// The coverage-guided attack-scenario fuzzer.
//
// Search loop: a population of ScenarioGenotypes evolves over
// generations. Each generation is packaged as one fuzz campaign
// (fabric/campaign.h FuzzCell) and fanned out through the sweep
// fabric's Coordinator — with listen=false this degrades to in-process
// worker threads over the same lease table, and the fabric's
// byte-identical merge contract makes the whole fuzzer deterministic at
// any worker count. Every candidate is scored on every (defense) cell
// of the configured hierarchy axes by the multi-symbol leakage
// estimator with its permutation-test significance gate.
//
// Selection is two-channel, the coverage-guided part:
//  * fitness — significant leakage, weighted 4x on defended cells
//    (leaking *through* a defense is the find that matters);
//  * novelty — a candidate whose coverage signature (fuzz/coverage.h)
//    was never seen on some cell survives regardless of score, so the
//    search keeps visiting new machine behaviors instead of climbing
//    one hill.
// Elites survive verbatim; the rest of the next generation is mutants,
// crossovers and fresh randoms, all drawn from one seeded Rng.
//
// Everything the run did is in the FuzzReport: the genotype stream and
// mutation log (byte-identical across runs and worker counts — the
// determinism test pins this), every campaign record, and the best
// significant find per cell. archive_fuzz_corpus turns those finds into
// replayable corpus entries (fuzz/corpus.h), including the defended
// "contrast" entries that pin the defense still suppressing each leak.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "fuzz/corpus.h"
#include "fuzz/genotype.h"
#include "fuzz/scenario.h"
#include "sim/system_config.h"

namespace pipo {

struct FuzzerConfig {
  std::uint64_t seed = 1;          ///< the whole run derives from this
  std::uint32_t population = 24;   ///< candidates per generation
  std::uint32_t generations = 8;
  unsigned workers = 0;            ///< in-process fabric workers (0 = 1)
  /// Cells = defenses x the one hierarchy-variant triple below.
  std::vector<DefenseKind> defenses{DefenseKind::kNone,
                                    DefenseKind::kPiPoMonitor};
  InclusionPolicy inclusion = InclusionPolicy::kInclusive;
  SliceHashKind slice_hash = SliceHashKind::kLowBits;
  MonitorLevel monitor_level = MonitorLevel::kLlc;
  std::uint32_t perm_rounds = 200;  ///< significance shuffles per cell
  double p_threshold = 0.01;        ///< significance gate for "a find"
  std::ostream* progress = nullptr;  ///< per-generation lines (nullable)
};

/// The best significant survivor of one (defense x hierarchy) cell.
struct FuzzFind {
  std::string cell;  ///< fuzz_cell_name of the cell it leaked on
  DefenseKind defense = DefenseKind::kNone;
  ScenarioGenotype genotype;
  double mi_bits = 0.0;
  double p_value = 1.0;
  double decoder_acc = 0.0;
  std::uint32_t rounds = 0;
  std::string signature;
};

struct FuzzReport {
  /// Every candidate in evaluation order: "gen<g> cand<i>: PPG1:...".
  std::vector<std::string> genotype_stream;
  /// How each candidate came to be, same order: seeds, mutation ops
  /// (with field-level old->new detail), crossover parents, randoms.
  std::vector<std::string> mutation_log;
  /// Every campaign record of every generation, in config-id order
  /// within each generation (the fabric's deterministic merge order).
  std::vector<std::string> records;
  /// Best significant find per cell, sorted by cell name.
  std::vector<FuzzFind> best;
  std::uint64_t candidates = 0;        ///< genotypes evaluated
  std::uint64_t evaluations = 0;       ///< candidate x cell runs
  std::uint64_t novel_signatures = 0;  ///< first-seen (cell, signature)s
  std::uint64_t significant = 0;       ///< evaluations with p <= threshold
  std::uint64_t failed = 0;            ///< error records
};

class Fuzzer {
 public:
  /// Validates the config (population >= 4, at least one defense,
  /// generations >= 1; throws std::invalid_argument).
  explicit Fuzzer(FuzzerConfig cfg);

  /// Runs the full evolution and returns the report. Deterministic:
  /// identical (config, seed) gives a byte-identical report at any
  /// worker count.
  FuzzReport run();

  const FuzzerConfig& config() const { return cfg_; }

 private:
  FuzzerConfig cfg_;
};

/// Archives the report's finds under `corpus_root`:
///  * "best_<cell>" for each significant find — bounds pin that the
///    leak keeps reproducing (mi >= half the recorded value, p within
///    the gate);
///  * for each undefended find, "contrast_<cell>" entries re-measuring
///    the same genotype under every *other* configured defense — bounds
///    pin that the defense keeps suppressing it (mi <= half the
///    undefended leak). A defense that does not suppress the genotype
///    is skipped with a note line (that is a finding, not a corpus
///    entry).
/// Returns the entries written; `notes` (nullable) receives one line
/// per skip/write.
std::vector<CorpusEntry> archive_fuzz_corpus(
    const FuzzReport& report, const FuzzerConfig& cfg,
    const std::string& corpus_root,
    TraceFormat format = TraceFormat::kBinaryV2,
    std::vector<std::string>* notes = nullptr);

}  // namespace pipo
