// The replayable regression corpus: the fuzzer's best finds, pinned.
//
// A corpus entry is one directory under corpus/:
//
//   corpus/<name>/genotype.txt    metadata (key: value lines — the
//                                 genotype, its cell, the leakage bounds
//                                 the entry must keep satisfying, and
//                                 the measurements recorded at archive
//                                 time)
//   corpus/<name>/core<i>.trace   the request streams the archived run
//                                 consumed (TraceCapture layout, v1 text
//                                 or v2 binary)
//
// Verification is a *live re-run*: the genotype is executed again on
// the entry's cell and the measured leakage must land inside the
// entry's [mi_lo, mi_hi] x [0, p_hi] box. (Replaying the recorded
// traces alone could never re-measure leakage — the attacker adapts to
// what it observes — so the traces are verified as a loadable,
// cleanly-replayable snapshot while the *bounds* carry the regression
// meaning: an undefended entry pins that the leak still reproduces, a
// defended "contrast" entry pins that the defense still suppresses it.)
// Failure messages name the genotype and the cell, so a regression in a
// 600-entry corpus is diagnosable from the ctest log alone.
#pragma once

#include <string>
#include <vector>

#include "fuzz/scenario.h"
#include "workload/trace_codec.h"

namespace pipo {

struct CorpusEntry {
  std::string name;       ///< directory name under the corpus root
  FuzzCellAxes axes;      ///< the (defense x hierarchy-variant) cell
  ScenarioGenotype genotype;
  std::uint32_t perm_rounds = 200;  ///< significance shuffles per verify
  // --- the regression box a verify run must land in ---
  double mi_lo = 0.0;     ///< measured I(K;O) must be >= this
  double mi_hi = 64.0;    ///< ... and <= this (defended cells pin decay)
  double p_hi = 1.0;      ///< measured p-value must be <= this
  // --- measurements recorded when the entry was archived ---
  double recorded_mi = 0.0;
  double recorded_p = 1.0;
  double recorded_decoder_acc = 0.0;
  std::string recorded_signature;  ///< coverage signature hex
  std::string note;       ///< one free-form provenance line

  std::string dir;        ///< absolute entry directory (set by load)
};

/// Renders/parses the genotype.txt metadata block. parse throws
/// std::invalid_argument naming the offending line.
std::string corpus_entry_text(const CorpusEntry& e);
CorpusEntry parse_corpus_entry_text(const std::string& text);

/// Archives one entry: re-runs the genotype on its cell with trace
/// capture into <corpus_root>/<e.name>/, fills the recorded_* fields
/// from that run, and writes genotype.txt. Throws std::runtime_error if
/// the fresh measurement already violates the entry's own bounds —
/// archiving a corpus entry that fails verification would poison CI.
/// Returns the completed entry (recorded_* and dir set).
CorpusEntry write_corpus_entry(const std::string& corpus_root, CorpusEntry e,
                               TraceFormat format = TraceFormat::kBinaryV2);

/// Loads every entry directory under `corpus_root` (a directory with a
/// genotype.txt), sorted by name. Returns empty if the root does not
/// exist. Throws std::invalid_argument on a malformed entry.
std::vector<CorpusEntry> load_corpus_dir(const std::string& corpus_root);

/// Verifies one entry: live genotype re-run against the bounds, plus
/// (with `replay_traces`) a clean replay of the recorded streams.
/// Returns an empty string on success, else a failure description that
/// names the genotype and the cell.
std::string verify_corpus_entry(const CorpusEntry& e,
                                bool replay_traces = true);

}  // namespace pipo
