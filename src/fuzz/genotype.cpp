#include "fuzz/genotype.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>

namespace pipo {

namespace {

constexpr char kPrefix[] = "PPG1:";

template <typename T>
T clamp_to(T v, T lo, T hi) {
  return std::min(std::max(v, lo), hi);
}

/// One field of the canonical form: "name=decimal" (key_seed is hex).
/// Hand-rolled so parse errors carry the field name and the canonical
/// order is enforced, not just the field set.
std::uint64_t take_field(const std::string& s, std::size_t& pos,
                         const char* name, bool last, bool hex) {
  const std::string want = std::string(name) + "=";
  if (s.compare(pos, want.size(), want) != 0) {
    throw std::invalid_argument("genotype: expected field '" +
                                std::string(name) + "' at offset " +
                                std::to_string(pos));
  }
  pos += want.size();
  const std::size_t end = last ? s.size() : s.find(',', pos);
  if (end == std::string::npos) {
    throw std::invalid_argument("genotype: field '" + std::string(name) +
                                "' is not comma-terminated");
  }
  const std::string tok = s.substr(pos, end - pos);
  if (tok.empty()) {
    throw std::invalid_argument("genotype: field '" + std::string(name) +
                                "' is empty");
  }
  std::uint64_t v = 0;
  std::size_t used = 0;
  try {
    // lint:allow(raw-parse) full-token checked below (used != tok.size()
    // throws); parse_num.h is decimal-only and this field can be hex
    v = std::stoull(tok, &used, hex ? 16 : 10);
  } catch (const std::exception&) {
    throw std::invalid_argument("genotype: field '" + std::string(name) +
                                "' is not a number: " + tok);
  }
  if (used != tok.size()) {
    throw std::invalid_argument("genotype: junk after field '" +
                                std::string(name) + "': " + tok);
  }
  pos = last ? end : end + 1;
  return v;
}

}  // namespace

std::string ScenarioGenotype::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%sinterval=%" PRIu64 ",ev_lines=%u,ev_stride=%u,"
                "bypass_pct=%u,far_delay=%" PRIu64 ",far_period=%u,"
                "key_bits=%u,phase_pct=%u,key_seed=%" PRIx64 ",obs_bins=%u",
                kPrefix, static_cast<std::uint64_t>(interval), ev_lines,
                ev_stride, bypass_pct, static_cast<std::uint64_t>(far_delay),
                far_period, key_bits, phase_pct, key_seed, obs_bins);
  return buf;
}

ScenarioGenotype ScenarioGenotype::parse(const std::string& s) {
  if (s.compare(0, sizeof(kPrefix) - 1, kPrefix) != 0) {
    throw std::invalid_argument(
        "genotype: missing PPG1: prefix in \"" + s + "\"");
  }
  std::size_t pos = sizeof(kPrefix) - 1;
  ScenarioGenotype g;
  g.interval = take_field(s, pos, "interval", false, false);
  g.ev_lines =
      static_cast<std::uint32_t>(take_field(s, pos, "ev_lines", false, false));
  g.ev_stride = static_cast<std::uint32_t>(
      take_field(s, pos, "ev_stride", false, false));
  g.bypass_pct = static_cast<std::uint32_t>(
      take_field(s, pos, "bypass_pct", false, false));
  g.far_delay = take_field(s, pos, "far_delay", false, false);
  g.far_period = static_cast<std::uint32_t>(
      take_field(s, pos, "far_period", false, false));
  g.key_bits =
      static_cast<std::uint32_t>(take_field(s, pos, "key_bits", false, false));
  g.phase_pct = static_cast<std::uint32_t>(
      take_field(s, pos, "phase_pct", false, false));
  g.key_seed = take_field(s, pos, "key_seed", false, true);
  g.obs_bins =
      static_cast<std::uint32_t>(take_field(s, pos, "obs_bins", true, false));
  if (pos != s.size()) {
    throw std::invalid_argument("genotype: trailing junk at offset " +
                                std::to_string(pos));
  }
  // A parsed genotype must already be in bounds — a corpus entry edited
  // out of the search space is an error, not something to silently fix.
  ScenarioGenotype clamped = g;
  clamped.clamp();
  if (!(clamped == g)) {
    throw std::invalid_argument("genotype: field out of bounds in \"" + s +
                                "\" (canonical: " + clamped.to_string() + ")");
  }
  return g;
}

void ScenarioGenotype::clamp() {
  const GenotypeBounds& b = kGenotypeBounds;
  interval = clamp_to(interval, b.interval_lo, b.interval_hi);
  ev_lines = clamp_to(ev_lines, b.ev_lines_lo, b.ev_lines_hi);
  ev_stride = clamp_to(ev_stride, b.ev_stride_lo, b.ev_stride_hi);
  bypass_pct = clamp_to(bypass_pct, b.bypass_pct_lo, b.bypass_pct_hi);
  far_delay = clamp_to(far_delay, b.far_delay_lo, b.far_delay_hi);
  far_period = clamp_to(far_period, b.far_period_lo, b.far_period_hi);
  key_bits = clamp_to(key_bits, b.key_bits_lo, b.key_bits_hi);
  phase_pct = clamp_to(phase_pct, b.phase_pct_lo, b.phase_pct_hi);
  obs_bins = clamp_to(obs_bins, b.obs_bins_lo, b.obs_bins_hi);
  // far_delay and far_period enable each other; a lone zero disables
  // both so the canonical form has one spelling of "off".
  if (far_delay == 0 || far_period == 0) {
    far_delay = 0;
    far_period = 0;
  }
}

ScenarioGenotype paper_like_genotype() {
  ScenarioGenotype g;  // the defaults are the Fig 6 schedule, downscaled
  g.clamp();
  return g;
}

ScenarioGenotype random_genotype(Rng& rng) {
  const GenotypeBounds& b = kGenotypeBounds;
  ScenarioGenotype g;
  g.interval = rng.range(b.interval_lo, b.interval_hi);
  g.ev_lines = static_cast<std::uint32_t>(
      rng.range(b.ev_lines_lo, b.ev_lines_hi));
  g.ev_stride = static_cast<std::uint32_t>(
      rng.range(b.ev_stride_lo, b.ev_stride_hi));
  g.bypass_pct = static_cast<std::uint32_t>(
      rng.range(b.bypass_pct_lo, b.bypass_pct_hi));
  g.far_delay = rng.chance(0.3) ? rng.range(64, b.far_delay_hi) : 0;
  g.far_period = g.far_delay
                     ? static_cast<std::uint32_t>(rng.range(1, b.far_period_hi))
                     : 0;
  g.key_bits = static_cast<std::uint32_t>(
      rng.range(b.key_bits_lo, b.key_bits_hi));
  g.phase_pct = static_cast<std::uint32_t>(
      rng.range(b.phase_pct_lo, b.phase_pct_hi));
  g.key_seed = rng.next();
  g.obs_bins = static_cast<std::uint32_t>(
      rng.range(b.obs_bins_lo, b.obs_bins_hi));
  g.clamp();
  return g;
}

namespace {

/// Bounded multiplicative/additive step on one 64-bit field.
std::uint64_t step(std::uint64_t v, std::uint64_t lo, std::uint64_t hi,
                   Rng& rng) {
  const std::uint64_t span = hi - lo;
  if (span == 0) return lo;
  switch (rng.below(3)) {
    case 0: {  // small additive nudge, +-[1, span/8+1]
      const std::uint64_t mag = rng.range(1, span / 8 + 1);
      if (rng.chance(0.5)) return v + mag > hi ? hi : v + mag;
      return v < lo + mag ? lo : v - mag;
    }
    case 1:  // multiplicative kick (x2 / halve toward the bounds)
      if (rng.chance(0.5)) return std::min(hi, std::max(v, lo + 1) * 2);
      return std::max(lo, v / 2);
    default:  // uniform resample — escape hatch from local optima
      return rng.range(lo, hi);
  }
}

}  // namespace

std::string mutate_genotype(ScenarioGenotype& g, Rng& rng) {
  const GenotypeBounds& b = kGenotypeBounds;
  const std::uint32_t n_fields = 1 + static_cast<std::uint32_t>(rng.below(3));
  std::string log;
  for (std::uint32_t i = 0; i < n_fields; ++i) {
    if (!log.empty()) log += ", ";
    char line[96];
    switch (rng.below(10)) {
      case 0: {
        const Tick old = g.interval;
        g.interval = step(old, b.interval_lo, b.interval_hi, rng);
        std::snprintf(line, sizeof line, "interval %" PRIu64 "->%" PRIu64,
                      static_cast<std::uint64_t>(old),
                      static_cast<std::uint64_t>(g.interval));
        break;
      }
      case 1: {
        const std::uint32_t old = g.ev_lines;
        g.ev_lines = static_cast<std::uint32_t>(
            step(old, b.ev_lines_lo, b.ev_lines_hi, rng));
        std::snprintf(line, sizeof line, "ev_lines %u->%u", old, g.ev_lines);
        break;
      }
      case 2: {
        const std::uint32_t old = g.ev_stride;
        g.ev_stride = static_cast<std::uint32_t>(
            step(old, b.ev_stride_lo, b.ev_stride_hi, rng));
        std::snprintf(line, sizeof line, "ev_stride %u->%u", old,
                      g.ev_stride);
        break;
      }
      case 3: {
        const std::uint32_t old = g.bypass_pct;
        g.bypass_pct = static_cast<std::uint32_t>(
            step(old, b.bypass_pct_lo, b.bypass_pct_hi, rng));
        std::snprintf(line, sizeof line, "bypass_pct %u->%u", old,
                      g.bypass_pct);
        break;
      }
      case 4: {
        const Tick old = g.far_delay;
        g.far_delay = step(old, b.far_delay_lo, b.far_delay_hi, rng);
        if (g.far_delay != 0 && g.far_period == 0) {
          g.far_period = static_cast<std::uint32_t>(
              rng.range(1, b.far_period_hi));
        }
        std::snprintf(line, sizeof line, "far_delay %" PRIu64 "->%" PRIu64,
                      static_cast<std::uint64_t>(old),
                      static_cast<std::uint64_t>(g.far_delay));
        break;
      }
      case 5: {
        const std::uint32_t old = g.far_period;
        g.far_period = static_cast<std::uint32_t>(
            step(old, b.far_period_lo, b.far_period_hi, rng));
        if (g.far_period != 0 && g.far_delay == 0) {
          g.far_delay = rng.range(64, b.far_delay_hi);
        }
        std::snprintf(line, sizeof line, "far_period %u->%u", old,
                      g.far_period);
        break;
      }
      case 6: {
        const std::uint32_t old = g.key_bits;
        g.key_bits = static_cast<std::uint32_t>(
            step(old, b.key_bits_lo, b.key_bits_hi, rng));
        std::snprintf(line, sizeof line, "key_bits %u->%u", old, g.key_bits);
        break;
      }
      case 7: {
        const std::uint32_t old = g.phase_pct;
        g.phase_pct = static_cast<std::uint32_t>(
            step(old, b.phase_pct_lo, b.phase_pct_hi, rng));
        std::snprintf(line, sizeof line, "phase_pct %u->%u", old,
                      g.phase_pct);
        break;
      }
      case 8: {
        g.key_seed = rng.next();
        std::snprintf(line, sizeof line, "key_seed resampled");
        break;
      }
      default: {
        const std::uint32_t old = g.obs_bins;
        g.obs_bins = static_cast<std::uint32_t>(
            step(old, b.obs_bins_lo, b.obs_bins_hi, rng));
        std::snprintf(line, sizeof line, "obs_bins %u->%u", old, g.obs_bins);
        break;
      }
    }
    log += line;
  }
  g.clamp();
  return log;
}

ScenarioGenotype crossover_genotype(const ScenarioGenotype& a,
                                    const ScenarioGenotype& b, Rng& rng) {
  ScenarioGenotype c;
  c.interval = rng.chance(0.5) ? a.interval : b.interval;
  c.ev_lines = rng.chance(0.5) ? a.ev_lines : b.ev_lines;
  c.ev_stride = rng.chance(0.5) ? a.ev_stride : b.ev_stride;
  c.bypass_pct = rng.chance(0.5) ? a.bypass_pct : b.bypass_pct;
  // The far-timing pair travels together: mixing one parent's delay
  // with the other's period would manufacture schedules neither parent
  // expressed.
  if (rng.chance(0.5)) {
    c.far_delay = a.far_delay;
    c.far_period = a.far_period;
  } else {
    c.far_delay = b.far_delay;
    c.far_period = b.far_period;
  }
  c.key_bits = rng.chance(0.5) ? a.key_bits : b.key_bits;
  c.phase_pct = rng.chance(0.5) ? a.phase_pct : b.phase_pct;
  c.key_seed = rng.chance(0.5) ? a.key_seed : b.key_seed;
  c.obs_bins = rng.chance(0.5) ? a.obs_bins : b.obs_bins;
  c.clamp();
  return c;
}

}  // namespace pipo
