// Coverage signatures: what "novel behavior" means to the fuzzer.
//
// Score alone (leakage) makes a fuzzer greedy — it climbs the first
// hill it finds and never visits the defense's other failure modes. The
// coverage signature makes *novelty* a first-class acceptance reason:
// each scenario run is summarized as a tuple of log2-bucketed event
// counters (the full System::Stats vector, the active defense's
// capture/prefetch activity, and the observation-symbol histogram), and
// a candidate whose signature was never seen before survives into the
// population even when its leakage is unremarkable. Log2 bucketing is
// deliberately coarse: two runs count as "the same behavior" unless
// some event class changed by ~2x, so the signature space stays small
// enough to saturate while still separating e.g. a back-invalidation
// storm from a quiet bypass sweep.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/system.h"

namespace pipo {

/// 15 System::Stats counters + captures + prefetches + 8 observation
/// histogram bins, each as a log2 bucket (0 for zero, else
/// 1 + floor(log2(v)), saturating at 255 — unreachable for u64).
inline constexpr std::size_t kCoverageSlots = 25;

struct CoverageSignature {
  std::array<std::uint8_t, kCoverageSlots> bucket{};

  bool operator==(const CoverageSignature&) const = default;
  bool operator<(const CoverageSignature& o) const {
    return bucket < o.bucket;
  }

  /// Compact hex rendering (two digits per slot) — the form embedded in
  /// fuzz campaign records and the novelty set's key.
  std::string to_string() const;
};

/// log2 bucket of one counter (exposed for tests).
std::uint8_t coverage_bucket(std::uint64_t v);

/// Builds the signature for one scenario run. `obs_hist` is the
/// observation-symbol histogram (<= 8 bins; missing bins count as 0).
CoverageSignature coverage_signature(const System::Stats& s,
                                     std::uint64_t captures,
                                     std::uint64_t prefetches,
                                     const std::vector<std::uint64_t>& obs_hist);

}  // namespace pipo
