#include "fuzz/coverage.h"

#include <cstdio>

namespace pipo {

std::uint8_t coverage_bucket(std::uint64_t v) {
  if (v == 0) return 0;
  std::uint8_t b = 1;
  while (v >>= 1) ++b;
  return b;  // 1 + floor(log2(v))
}

std::string CoverageSignature::to_string() const {
  std::string out;
  out.reserve(2 * kCoverageSlots);
  char buf[4];
  for (std::uint8_t b : bucket) {
    std::snprintf(buf, sizeof buf, "%02x", b);
    out += buf;
  }
  return out;
}

CoverageSignature coverage_signature(
    const System::Stats& s, std::uint64_t captures, std::uint64_t prefetches,
    const std::vector<std::uint64_t>& obs_hist) {
  CoverageSignature sig;
  std::size_t i = 0;
  sig.bucket[i++] = coverage_bucket(s.accesses);
  sig.bucket[i++] = coverage_bucket(s.l1_hits);
  sig.bucket[i++] = coverage_bucket(s.l2_hits);
  sig.bucket[i++] = coverage_bucket(s.l3_hits);
  sig.bucket[i++] = coverage_bucket(s.l3_misses);
  sig.bucket[i++] = coverage_bucket(s.back_invalidations);
  sig.bucket[i++] = coverage_bucket(s.upgrades);
  sig.bucket[i++] = coverage_bucket(s.invalidations_for_write);
  sig.bucket[i++] = coverage_bucket(s.l2_evictions);
  sig.bucket[i++] = coverage_bucket(s.writebacks);
  sig.bucket[i++] = coverage_bucket(s.prefetch_fills);
  sig.bucket[i++] = coverage_bucket(s.prefetch_drops);
  sig.bucket[i++] = coverage_bucket(s.pp_tag_fills);
  sig.bucket[i++] = coverage_bucket(s.pevicts);
  sig.bucket[i++] = coverage_bucket(s.ric_exemptions);
  sig.bucket[i++] = coverage_bucket(captures);
  sig.bucket[i++] = coverage_bucket(prefetches);
  for (std::size_t b = 0; b < 8; ++b) {
    sig.bucket[i++] =
        coverage_bucket(b < obs_hist.size() ? obs_hist[b] : 0);
  }
  return sig;
}

}  // namespace pipo
