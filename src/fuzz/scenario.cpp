#include "fuzz/scenario.h"

#include <algorithm>
#include <filesystem>
#include <memory>
#include <stdexcept>

#include "attack/eviction_set.h"
#include "attack/prime_probe.h"
#include "attack/victim.h"
#include "cache/slice_hash.h"
#include "sim/simulation.h"
#include "workload/stream_trace.h"
#include "workload/trace.h"

namespace pipo {

namespace {

/// Domain separator folded into g.key_seed for the permutation test, so
/// the significance shuffles are independent of the victim-key stream
/// derived from the same seed.
constexpr std::uint64_t kPermSeedSalt = 0xC0FFEE5EED5ull;
/// Likewise for the attacker's bypass-mix stream.
constexpr std::uint64_t kMixSeedSalt = 0x9B57A11Full;

}  // namespace

const char* defense_short_name(DefenseKind k) {
  switch (k) {
    case DefenseKind::kNone: return "none";
    case DefenseKind::kPiPoMonitor: return "pipo";
    case DefenseKind::kDirectoryMonitor: return "dir";
    case DefenseKind::kSharp: return "sharp";
    case DefenseKind::kBitp: return "bitp";
    case DefenseKind::kRic: return "ric";
  }
  return "?";
}

std::string fuzz_cell_name(const FuzzCellAxes& axes) {
  std::string name = defense_short_name(axes.defense);
  name += axes.inclusion == InclusionPolicy::kInclusive ? "_inc" : "_exc";
  name += axes.slice_hash == SliceHashKind::kLowBits ? "_low" : "_cas";
  name += '_';
  name += to_string(axes.monitor_level);
  return name;
}

FuzzCellAxes parse_fuzz_cell_name(const std::string& name) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= name.size()) {
    const auto us = name.find('_', start);
    const auto end = us == std::string::npos ? name.size() : us;
    parts.push_back(name.substr(start, end - start));
    if (us == std::string::npos) break;
    start = us + 1;
  }
  if (parts.size() != 4) {
    throw std::invalid_argument(
        "fuzz cell name needs 4 '_'-separated parts "
        "(<defense>_<inc|exc>_<low|cas>_<level>): " + name);
  }
  FuzzCellAxes axes;
  bool found = false;
  for (DefenseKind k :
       {DefenseKind::kNone, DefenseKind::kPiPoMonitor,
        DefenseKind::kDirectoryMonitor, DefenseKind::kSharp,
        DefenseKind::kBitp, DefenseKind::kRic}) {
    if (parts[0] == defense_short_name(k)) {
      axes.defense = k;
      found = true;
    }
  }
  if (!found) {
    throw std::invalid_argument("unknown defense in cell name: " + parts[0]);
  }
  if (parts[1] == "inc") {
    axes.inclusion = InclusionPolicy::kInclusive;
  } else if (parts[1] == "exc") {
    axes.inclusion = InclusionPolicy::kExclusive;
  } else {
    throw std::invalid_argument("unknown inclusion in cell name: " + parts[1]);
  }
  const auto hash = parse_slice_hash(parts[2]);
  if (!hash) {
    throw std::invalid_argument("unknown slice hash in cell name: " +
                                parts[2]);
  }
  axes.slice_hash = *hash;
  if (parts[3] == "l1") {
    axes.monitor_level = MonitorLevel::kL1;
  } else if (parts[3] == "l2") {
    axes.monitor_level = MonitorLevel::kL2;
  } else if (parts[3] == "llc") {
    axes.monitor_level = MonitorLevel::kLlc;
  } else {
    throw std::invalid_argument("unknown monitor level in cell name: " +
                                parts[3]);
  }
  return axes;
}

SystemConfig fuzz_system_config(const FuzzCellAxes& axes) {
  // The testcfg::mini machine (tests/sim/test_configs.h): Table II's
  // structure, scaled so a candidate scenario runs in milliseconds.
  SystemConfig cfg;
  cfg.l1i = {"l1i", 2 * 1024, 2, 2, ReplPolicy::kLru};
  cfg.l1d = {"l1d", 2 * 1024, 2, 2, ReplPolicy::kLru};
  cfg.l2 = {"l2", 8 * 1024, 4, 18, ReplPolicy::kLru};
  cfg.l3 = {"l3", 32 * 1024, 8, 35, ReplPolicy::kLru};
  cfg.l3_slices = 4;
  cfg.monitor.filter.l = 64;
  cfg.monitor.filter.b = 4;
  cfg.defense = axes.defense;
  cfg.monitor.enabled = axes.defense == DefenseKind::kPiPoMonitor;
  cfg.inclusion = axes.inclusion;
  cfg.slice_hash = axes.slice_hash;
  cfg.monitor_level = axes.monitor_level;
  return cfg;
}

ScenarioOutcome run_fuzz_scenario(const ScenarioGenotype& g,
                                  const SystemConfig& sys,
                                  std::uint32_t perm_rounds,
                                  const TraceCapture* capture) {
  ScenarioGenotype checked = g;
  checked.clamp();
  if (!(checked == g)) {
    throw std::invalid_argument("genotype out of bounds: " + g.to_string());
  }
  if (sys.num_cores < 2) {
    throw std::invalid_argument("fuzz scenario needs >= 2 cores");
  }

  // Same experiment layout as run_prime_probe_experiment
  // (attack/attack_experiment.cpp): victim text at a fixed segment, the
  // two routine entry points far enough apart for distinct LLC sets,
  // attacker eviction sets in their own region.
  const Addr victim_text = Addr{0x7F00} << 24;
  const Addr square_addr = victim_text;
  const Addr multiply_addr = victim_text + (Addr{1} << 16) + 0x40;
  const Addr attacker_base = Addr{0x1BAD} << 28;
  const std::uint32_t iterations = g.key_bits;

  Simulation sim(sys);
  const LlcGeometry geo = LlcGeometry::from(sys);

  AttackerConfig acfg;
  acfg.eviction_sets = {
      build_eviction_set_strided(geo, square_addr, g.ev_lines, attacker_base,
                                 g.ev_stride),
      build_eviction_set_strided(geo, multiply_addr, g.ev_lines,
                                 attacker_base + (Addr{1} << 30),
                                 g.ev_stride),
  };
  acfg.interval = g.interval;
  acfg.traversals = iterations + 1;  // +1: initial prime round
  acfg.miss_threshold = sim.system().llc_miss_threshold();
  acfg.bypass_pct = g.bypass_pct;
  acfg.mix_seed = g.key_seed ^ kMixSeedSalt;
  acfg.far_delay = g.far_delay;
  acfg.far_period = g.far_period;
  auto attacker = std::make_unique<PrimeProbeAttacker>(acfg);
  PrimeProbeAttacker* attacker_raw = attacker.get();

  VictimConfig vcfg;
  vcfg.square_addr = square_addr;
  vcfg.multiply_addr = multiply_addr;
  vcfg.key = make_test_key(g.key_bits, g.key_seed);
  vcfg.bit_period = g.interval;
  vcfg.multiply_phase =
      std::max<Tick>(1, g.interval * g.phase_pct / 100);
  vcfg.start_offset = 64;
  vcfg.iterations = iterations + 2;
  auto victim = std::make_unique<SquareMultiplyVictim>(vcfg);
  SquareMultiplyVictim* victim_raw = victim.get();

  // Corpus capture: record exactly the request streams the simulation
  // consumes (TraceRecorder is invisible to the run). Idle cores are not
  // recorded — assign_trace_scenario idle-fills them on replay.
  std::vector<TraceRecorder*> recorders;
  auto place = [&](CoreId core, std::unique_ptr<Workload> w) {
    if (capture != nullptr) {
      std::filesystem::create_directories(capture->dir);
      auto rec = std::make_unique<TraceRecorder>(
          std::move(w),
          capture->dir + "/core" + std::to_string(core) + ".trace",
          capture->format);
      recorders.push_back(rec.get());
      sim.set_workload(core, std::move(rec));
    } else {
      sim.set_workload(core, std::move(w));
    }
  };
  place(0, std::move(attacker));
  place(1, std::move(victim));
  for (CoreId c = 2; c < sys.num_cores; ++c) {
    sim.set_workload(c, std::make_unique<IdleWorkload>());
  }

  // Budget: the historical slack plus room for every far-future delay
  // the schedule can inject (each of the ~2*ev_lines probes per
  // traversal may carry one).
  const std::uint64_t total_probes =
      static_cast<std::uint64_t>(acfg.traversals) * 2 * g.ev_lines;
  const Tick far_slack =
      g.far_period == 0
          ? 0
          : (total_probes / g.far_period + 1) * g.far_delay;
  const Tick max_ticks =
      (static_cast<Tick>(iterations) + 4) * g.interval + 1'000'000 +
      far_slack;
  sim.run(max_ticks);
  for (TraceRecorder* rec : recorders) rec->finish();

  // Observation symbols: traversal k >= 1 observes victim iteration
  // k-1; quantize the multiply-set latency sums into obs_bins
  // equal-width symbols over the trace's own [min, max] span.
  const auto& lat = attacker_raw->latency_sums();
  const std::uint32_t rounds = std::min<std::uint32_t>(
      iterations, attacker_raw->completed_traversals() > 0
                      ? attacker_raw->completed_traversals() - 1
                      : 0);
  ScenarioOutcome out;
  out.rounds = rounds;
  out.obs_hist.assign(g.obs_bins, 0);
  std::vector<std::uint32_t> key_syms(rounds), obs_syms(rounds);
  if (rounds > 0) {
    std::uint64_t lo = lat[1][1], hi = lat[1][1];
    for (std::uint32_t i = 0; i < rounds; ++i) {
      lo = std::min(lo, lat[1][i + 1]);
      hi = std::max(hi, lat[1][i + 1]);
    }
    const std::uint64_t span = hi - lo + 1;
    for (std::uint32_t i = 0; i < rounds; ++i) {
      key_syms[i] = victim_raw->key_bit(i) ? 1 : 0;
      obs_syms[i] =
          static_cast<std::uint32_t>((lat[1][i + 1] - lo) * g.obs_bins / span);
      ++out.obs_hist[obs_syms[i]];
    }
    const SymbolTally t = tally_symbols(key_syms, obs_syms, 2, g.obs_bins);
    const MiSignificance sig = permutation_test_mi(
        key_syms, obs_syms, 2, g.obs_bins, perm_rounds,
        g.key_seed ^ kPermSeedSalt);
    out.mi_bits = sig.mi_bits;
    out.p_value = sig.p_value;
    out.decoder_acc = best_decoder_accuracy(t);
  }
  out.stats = sim.system().stats();
  out.captures = sim.system().active_monitor().captures();
  out.prefetches = sim.system().active_monitor().prefetches_issued();
  out.signature =
      coverage_signature(out.stats, out.captures, out.prefetches,
                         out.obs_hist);
  return out;
}

}  // namespace pipo
