// The fuzzer's search space: one attack scenario as a small, bounded,
// mutable value.
//
// A ScenarioGenotype describes a complete cross-core attack scenario —
// prime/probe cadence, eviction-set shape and size, bypass-probe mix,
// victim access pattern, calendar-deep far-future timing, and the
// observation quantization — everything run_fuzz_scenario (scenario.h)
// needs to instantiate attacker + victim on a simulated machine. Every
// field lives in a hard [lo, hi] bound (kGenotypeBounds); clamp()
// re-establishes the bounds after any mutation, so every genotype the
// fuzzer can ever produce is runnable by construction.
//
// Mutation and crossover are *deterministic* given the caller's Rng:
// the same seed produces the same genotype stream forever (the fuzzer
// determinism test pins this byte for byte). Each operator returns a
// human-readable description line for the mutation log.
//
// The canonical text form (to_string/parse, fixed field order, prefix
// "PPG1:") is the genotype's identity everywhere: corpus entries, fuzz
// campaign cells on the fabric wire, log lines, and the determinism
// test's genotype stream. parse(to_string(g)) == g exactly.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/types.h"

namespace pipo {

struct ScenarioGenotype {
  // --- attack schedule ---
  Tick interval = 5000;           ///< prime/probe cadence in ticks
  std::uint32_t ev_lines = 8;     ///< eviction-set size per target
  std::uint32_t ev_stride = 1;    ///< congruence-stride multiplier (shape)
  std::uint32_t bypass_pct = 100; ///< % of probes bypassing private caches
  // --- calendar-deep far-future timing ---
  Tick far_delay = 0;             ///< injected pre_delay (0 = off)
  std::uint32_t far_period = 0;   ///< probes between injections (0 = off)
  // --- victim access pattern ---
  std::uint32_t key_bits = 60;    ///< key length = observation rounds
  std::uint32_t phase_pct = 50;   ///< multiply fetch offset, % of interval
  std::uint64_t key_seed = 0xF00D; ///< victim key derivation seed
  // --- observation quantization ---
  std::uint32_t obs_bins = 4;     ///< latency-histogram symbols per round

  bool operator==(const ScenarioGenotype&) const = default;

  /// Canonical single-line text form ("PPG1:interval=...,..."), stable
  /// field order, lowercase hex seed. parse() round-trips it exactly.
  std::string to_string() const;

  /// Parses the canonical form; throws std::invalid_argument naming the
  /// offending field on any deviation (wrong prefix, missing/reordered
  /// field, junk, out-of-bounds value).
  static ScenarioGenotype parse(const std::string& s);

  /// Clamps every field into its kGenotypeBounds range (and repairs
  /// cross-field constraints, e.g. phase_pct keeping the multiply fetch
  /// strictly inside the period).
  void clamp();
};

/// Inclusive per-field bounds of the search space. Exposed so tests can
/// assert mutation closure without copying the numbers.
struct GenotypeBounds {
  Tick interval_lo = 600, interval_hi = 20'000;
  std::uint32_t ev_lines_lo = 2, ev_lines_hi = 24;
  std::uint32_t ev_stride_lo = 1, ev_stride_hi = 8;
  std::uint32_t bypass_pct_lo = 0, bypass_pct_hi = 100;
  Tick far_delay_lo = 0, far_delay_hi = 60'000;
  std::uint32_t far_period_lo = 0, far_period_hi = 64;
  std::uint32_t key_bits_lo = 24, key_bits_hi = 96;
  std::uint32_t phase_pct_lo = 10, phase_pct_hi = 90;
  std::uint32_t obs_bins_lo = 2, obs_bins_hi = 8;
};
inline constexpr GenotypeBounds kGenotypeBounds{};

/// The paper's Fig 6 attack expressed as a genotype — the seed corpus
/// always contains it, so the fuzzer starts from known-fertile ground.
ScenarioGenotype paper_like_genotype();

/// A fresh random genotype, every field uniform in its bounds.
ScenarioGenotype random_genotype(Rng& rng);

/// Mutates 1–3 randomly chosen fields in place with bounded steps;
/// returns a log line like "interval 5000->6200, bypass_pct 100->85".
std::string mutate_genotype(ScenarioGenotype& g, Rng& rng);

/// Uniform per-field crossover of two parents; returns the child (and
/// appends nothing to the log — the fuzzer logs the parent indices).
ScenarioGenotype crossover_genotype(const ScenarioGenotype& a,
                                    const ScenarioGenotype& b, Rng& rng);

}  // namespace pipo
