#include "fuzz/corpus.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/parse_num.h"

namespace pipo {

namespace fs = std::filesystem;

namespace {

std::string fmt_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

double parse_double_field(const std::string& key, const std::string& v) {
  const std::string what = "corpus entry field '" + key + "'";
  return pipo::parse_double(v, what.c_str());
}

}  // namespace

std::string corpus_entry_text(const CorpusEntry& e) {
  std::string out;
  out += "name: " + e.name + "\n";
  out += "cell: " + fuzz_cell_name(e.axes) + "\n";
  out += "genotype: " + e.genotype.to_string() + "\n";
  out += "perm_rounds: " + std::to_string(e.perm_rounds) + "\n";
  out += "mi_lo: " + fmt_double(e.mi_lo) + "\n";
  out += "mi_hi: " + fmt_double(e.mi_hi) + "\n";
  out += "p_hi: " + fmt_double(e.p_hi) + "\n";
  out += "recorded_mi: " + fmt_double(e.recorded_mi) + "\n";
  out += "recorded_p: " + fmt_double(e.recorded_p) + "\n";
  out += "recorded_decoder_acc: " + fmt_double(e.recorded_decoder_acc) + "\n";
  out += "recorded_signature: " + e.recorded_signature + "\n";
  out += "note: " + e.note + "\n";
  return out;
}

CorpusEntry parse_corpus_entry_text(const std::string& text) {
  CorpusEntry e;
  bool have_name = false, have_cell = false, have_genotype = false;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto colon = line.find(": ");
    if (colon == std::string::npos) {
      // "key:" with an empty value is legal (e.g. an empty note).
      if (!line.empty() && line.back() == ':') {
        continue;
      }
      throw std::invalid_argument("corpus entry line has no 'key: value' "
                                  "form: " + line);
    }
    const std::string key = line.substr(0, colon);
    const std::string value = line.substr(colon + 2);
    if (key == "name") {
      e.name = value;
      have_name = true;
    } else if (key == "cell") {
      e.axes = parse_fuzz_cell_name(value);
      have_cell = true;
    } else if (key == "genotype") {
      e.genotype = ScenarioGenotype::parse(value);
      have_genotype = true;
    } else if (key == "perm_rounds") {
      e.perm_rounds =
          static_cast<std::uint32_t>(parse_double_field(key, value));
    } else if (key == "mi_lo") {
      e.mi_lo = parse_double_field(key, value);
    } else if (key == "mi_hi") {
      e.mi_hi = parse_double_field(key, value);
    } else if (key == "p_hi") {
      e.p_hi = parse_double_field(key, value);
    } else if (key == "recorded_mi") {
      e.recorded_mi = parse_double_field(key, value);
    } else if (key == "recorded_p") {
      e.recorded_p = parse_double_field(key, value);
    } else if (key == "recorded_decoder_acc") {
      e.recorded_decoder_acc = parse_double_field(key, value);
    } else if (key == "recorded_signature") {
      e.recorded_signature = value;
    } else if (key == "note") {
      e.note = value;
    } else {
      throw std::invalid_argument("unknown corpus entry field: " + key);
    }
  }
  if (!have_name || !have_cell || !have_genotype) {
    throw std::invalid_argument(
        "corpus entry is missing a required field (name, cell, genotype)");
  }
  return e;
}

CorpusEntry write_corpus_entry(const std::string& corpus_root, CorpusEntry e,
                               TraceFormat format) {
  const fs::path dir = fs::path(corpus_root) / e.name;
  fs::create_directories(dir);
  const TraceCapture capture{dir.string(), format};
  const ScenarioOutcome out = run_fuzz_scenario(
      e.genotype, fuzz_system_config(e.axes), e.perm_rounds, &capture);
  e.recorded_mi = out.mi_bits;
  e.recorded_p = out.p_value;
  e.recorded_decoder_acc = out.decoder_acc;
  e.recorded_signature = out.signature.to_string();
  e.dir = dir.string();
  if (out.mi_bits < e.mi_lo || out.mi_bits > e.mi_hi ||
      out.p_value > e.p_hi) {
    throw std::runtime_error(
        "corpus entry '" + e.name + "' fails its own bounds at archive "
        "time: mi=" + fmt_double(out.mi_bits) + " p=" +
        fmt_double(out.p_value) + " bounds=[" + fmt_double(e.mi_lo) + ", " +
        fmt_double(e.mi_hi) + "] p_hi=" + fmt_double(e.p_hi));
  }
  std::ofstream f(dir / "genotype.txt", std::ios::binary);
  f << corpus_entry_text(e);
  f.close();
  if (!f) {
    throw std::runtime_error("failed to write " +
                             (dir / "genotype.txt").string());
  }
  return e;
}

std::vector<CorpusEntry> load_corpus_dir(const std::string& corpus_root) {
  std::vector<CorpusEntry> out;
  if (!fs::is_directory(corpus_root)) return out;
  for (const auto& entry : fs::directory_iterator(corpus_root)) {
    if (!entry.is_directory()) continue;
    const fs::path meta = entry.path() / "genotype.txt";
    if (!fs::exists(meta)) continue;
    std::ifstream f(meta, std::ios::binary);
    if (!f) {
      throw std::invalid_argument("cannot read " + meta.string());
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    CorpusEntry e;
    try {
      e = parse_corpus_entry_text(ss.str());
    } catch (const std::exception& ex) {
      throw std::invalid_argument(meta.string() + ": " + ex.what());
    }
    if (e.name != entry.path().filename().string()) {
      throw std::invalid_argument(
          meta.string() + ": entry name '" + e.name +
          "' does not match its directory name '" +
          entry.path().filename().string() + "'");
    }
    e.dir = entry.path().string();
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(),
            [](const CorpusEntry& a, const CorpusEntry& b) {
              return a.name < b.name;
            });
  return out;
}

std::string verify_corpus_entry(const CorpusEntry& e, bool replay_traces) {
  const std::string identity = "corpus entry '" + e.name + "' (cell " +
                               fuzz_cell_name(e.axes) + ", genotype " +
                               e.genotype.to_string() + ")";
  ScenarioOutcome out;
  try {
    out = run_fuzz_scenario(e.genotype, fuzz_system_config(e.axes),
                            e.perm_rounds, nullptr);
  } catch (const std::exception& ex) {
    return identity + ": live re-run threw: " + ex.what();
  }
  if (out.mi_bits < e.mi_lo || out.mi_bits > e.mi_hi) {
    return identity + ": measured leakage " + fmt_double(out.mi_bits) +
           " bits is outside the pinned range [" + fmt_double(e.mi_lo) +
           ", " + fmt_double(e.mi_hi) + "] (recorded " +
           fmt_double(e.recorded_mi) + ")";
  }
  if (out.p_value > e.p_hi) {
    return identity + ": significance p=" + fmt_double(out.p_value) +
           " exceeds the pinned p_hi=" + fmt_double(e.p_hi) +
           " (recorded " + fmt_double(e.recorded_p) + ")";
  }
  if (!e.recorded_signature.empty() &&
      out.signature.to_string() != e.recorded_signature) {
    return identity + ": coverage signature drifted from " +
           e.recorded_signature + " to " + out.signature.to_string() +
           " (the run no longer reproduces the archived behavior)";
  }
  if (replay_traces && !e.dir.empty()) {
    bool any_trace = false;
    for (const auto& f : fs::directory_iterator(e.dir)) {
      if (is_core_trace_name(f.path().filename().string())) any_trace = true;
    }
    if (!any_trace) {
      return identity + ": entry has no core<i>.trace recording";
    }
    try {
      (void)run_trace_perf(e.dir, fuzz_system_config(e.axes));
    } catch (const std::exception& ex) {
      return identity + ": recorded trace replay failed: " + ex.what();
    }
  }
  return {};
}

}  // namespace pipo
