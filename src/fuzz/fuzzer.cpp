#include "fuzz/fuzzer.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <stdexcept>

#include "common/rng.h"
#include "fabric/coordinator.h"

namespace pipo {

namespace {

std::string fmt6(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

/// Extracts `"key": <number>` from one of our own campaign records. We
/// render these records ourselves (campaign.cpp config_result_json), so
/// a missing key is a logic error worth throwing on, not tolerating.
double num_field(const std::string& rec, const std::string& key) {
  const std::string tag = "\"" + key + "\": ";
  const auto pos = rec.find(tag);
  if (pos == std::string::npos) {
    throw std::runtime_error("fuzz record is missing field '" + key +
                             "': " + rec);
  }
  // lint:allow(raw-parse) prefix extraction from our own %.6f-rendered
  // record; a malformed field throws std::invalid_argument right here
  return std::stod(rec.substr(pos + tag.size()));
}

std::string str_field(const std::string& rec, const std::string& key) {
  const std::string tag = "\"" + key + "\": \"";
  const auto pos = rec.find(tag);
  if (pos == std::string::npos) {
    throw std::runtime_error("fuzz record is missing field '" + key +
                             "': " + rec);
  }
  const auto start = pos + tag.size();
  const auto end = rec.find('"', start);
  if (end == std::string::npos) {
    throw std::runtime_error("fuzz record field '" + key +
                             "' is unterminated: " + rec);
  }
  return rec.substr(start, end - start);
}

bool is_error_record(const std::string& rec) {
  return rec.find("\"error\": ") != std::string::npos;
}

}  // namespace

Fuzzer::Fuzzer(FuzzerConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.population < 4) {
    throw std::invalid_argument("fuzzer population must be >= 4");
  }
  if (cfg_.generations < 1) {
    throw std::invalid_argument("fuzzer needs >= 1 generation");
  }
  if (cfg_.defenses.empty()) {
    throw std::invalid_argument("fuzzer needs at least one defense cell");
  }
  if (cfg_.perm_rounds == 0) {
    throw std::invalid_argument("fuzzer needs perm_rounds >= 1");
  }
}

FuzzReport Fuzzer::run() {
  FuzzReport report;
  Rng rng(cfg_.seed);
  const std::size_t n_def = cfg_.defenses.size();

  // Pre-compute the cell names (one per defense on the fixed hierarchy
  // triple) and the per-cell axes.
  std::vector<std::string> cell_names;
  for (DefenseKind d : cfg_.defenses) {
    cell_names.push_back(fuzz_cell_name(
        {d, cfg_.inclusion, cfg_.slice_hash, cfg_.monitor_level}));
  }

  // Seed population: the paper's attack plus mutated/random variants.
  std::vector<ScenarioGenotype> pop;
  std::vector<std::string> origin;  // mutation-log line per candidate
  pop.push_back(paper_like_genotype());
  origin.push_back("<- paper seed");
  while (pop.size() < cfg_.population) {
    if (pop.size() % 3 == 0) {
      pop.push_back(random_genotype(rng));
      origin.push_back("<- random");
    } else {
      ScenarioGenotype g = paper_like_genotype();
      const std::string ops = mutate_genotype(g, rng);
      pop.push_back(g);
      origin.push_back("<- mutate(paper): " + ops);
    }
  }

  std::set<std::string> seen_signatures;  // "(cell)|(signature hex)"
  std::map<std::string, FuzzFind> best_by_cell;

  for (std::uint32_t gen = 0; gen < cfg_.generations; ++gen) {
    // Log this generation's candidates before running them, so a crash
    // mid-campaign still leaves the stream/log prefix-complete.
    for (std::size_t i = 0; i < pop.size(); ++i) {
      const std::string tag =
          "gen" + std::to_string(gen) + " cand" + std::to_string(i);
      report.genotype_stream.push_back(tag + ": " + pop[i].to_string());
      report.mutation_log.push_back(tag + " " + origin[i]);
    }
    report.candidates += pop.size();

    // One campaign per generation, fanned out through the degraded
    // in-process fabric. The merge order (config-id order) is the
    // fabric's determinism contract, so the records — and everything
    // derived from them — are identical at any worker count.
    CampaignSpec spec;
    spec.run_mixes = false;
    spec.defenses = cfg_.defenses;
    spec.inclusion = cfg_.inclusion;
    spec.slice_hash = cfg_.slice_hash;
    spec.monitor_level = cfg_.monitor_level;
    spec.fuzz_perm_rounds = cfg_.perm_rounds;
    for (std::size_t i = 0; i < pop.size(); ++i) {
      spec.fuzz.push_back(FuzzCell{
          "g" + std::to_string(gen) + "_" + std::to_string(i),
          pop[i].to_string()});
    }
    CoordinatorOptions opt;
    opt.listen = false;
    opt.local_workers = cfg_.workers;
    Coordinator coordinator(spec, opt);
    const CampaignOutcome outcome = coordinator.run();
    report.failed += outcome.failed;
    report.records.insert(report.records.end(), outcome.records.begin(),
                          outcome.records.end());

    // Score every candidate from its records: significant leakage
    // (defended cells weighted 4x) plus a small novelty bonus per
    // first-seen coverage signature.
    std::vector<double> fitness(pop.size(), 0.0);
    std::vector<bool> novel(pop.size(), false);
    double gen_best_mi = 0.0;
    std::string gen_best_cell;
    for (std::size_t i = 0; i < pop.size(); ++i) {
      for (std::size_t d = 0; d < n_def; ++d) {
        const std::string& rec = outcome.records[i * n_def + d];
        ++report.evaluations;
        if (is_error_record(rec)) continue;
        const double mi = num_field(rec, "mi_bits");
        const double p = num_field(rec, "p_value");
        const std::string sig = str_field(rec, "signature");
        if (seen_signatures.insert(cell_names[d] + "|" + sig).second) {
          ++report.novel_signatures;
          novel[i] = true;
          fitness[i] += 0.05;
        }
        if (p <= cfg_.p_threshold) {
          ++report.significant;
          const bool defended = cfg_.defenses[d] != DefenseKind::kNone;
          fitness[i] += mi * (defended ? 4.0 : 1.0);
          auto it = best_by_cell.find(cell_names[d]);
          if (it == best_by_cell.end() || mi > it->second.mi_bits) {
            FuzzFind f;
            f.cell = cell_names[d];
            f.defense = cfg_.defenses[d];
            f.genotype = pop[i];
            f.mi_bits = mi;
            f.p_value = p;
            f.decoder_acc = num_field(rec, "decoder_acc");
            f.rounds =
                static_cast<std::uint32_t>(num_field(rec, "rounds"));
            f.signature = sig;
            best_by_cell[f.cell] = f;
          }
          if (mi > gen_best_mi) {
            gen_best_mi = mi;
            gen_best_cell = cell_names[d];
          }
        }
      }
    }
    if (cfg_.progress != nullptr) {
      *cfg_.progress << "gen " << gen << ": candidates=" << pop.size()
                     << " significant_total=" << report.significant
                     << " novel_total=" << report.novel_signatures;
      if (!gen_best_cell.empty()) {
        *cfg_.progress << " gen_best_mi=" << fmt6(gen_best_mi) << " on "
                       << gen_best_cell;
      }
      *cfg_.progress << "\n";
    }
    if (gen + 1 == cfg_.generations) break;

    // Selection: elites by fitness (ties broken by canonical genotype
    // text, then index — fully deterministic), plus every novel
    // candidate's survival through the elite ranking's novelty bonus.
    std::vector<std::size_t> order(pop.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                if (fitness[a] != fitness[b]) return fitness[a] > fitness[b];
                const std::string sa = pop[a].to_string();
                const std::string sb = pop[b].to_string();
                if (sa != sb) return sa < sb;
                return a < b;
              });
    const std::size_t n_elite =
        std::max<std::size_t>(2, cfg_.population / 4);
    std::vector<ScenarioGenotype> next;
    std::vector<std::string> next_origin;
    for (std::size_t e = 0; e < n_elite && e < order.size(); ++e) {
      next.push_back(pop[order[e]]);
      next_origin.push_back("<- elite(gen" + std::to_string(gen) + " cand" +
                            std::to_string(order[e]) + ")");
    }
    while (next.size() < cfg_.population) {
      const std::uint64_t op = rng.below(10);
      if (op < 6) {
        const std::size_t p = order[rng.below(n_elite)];
        ScenarioGenotype g = pop[p];
        const std::string ops = mutate_genotype(g, rng);
        next.push_back(g);
        next_origin.push_back("<- mutate(gen" + std::to_string(gen) +
                              " cand" + std::to_string(p) + "): " + ops);
      } else if (op < 8) {
        const std::size_t pa = order[rng.below(n_elite)];
        const std::size_t pb = order[rng.below(n_elite)];
        next.push_back(crossover_genotype(pop[pa], pop[pb], rng));
        next_origin.push_back("<- crossover(gen" + std::to_string(gen) +
                              " cand" + std::to_string(pa) + ", cand" +
                              std::to_string(pb) + ")");
      } else {
        next.push_back(random_genotype(rng));
        next_origin.push_back("<- random");
      }
    }
    pop = std::move(next);
    origin = std::move(next_origin);
  }

  for (const auto& [cell, find] : best_by_cell) report.best.push_back(find);
  return report;
}

std::vector<CorpusEntry> archive_fuzz_corpus(
    const FuzzReport& report, const FuzzerConfig& cfg,
    const std::string& corpus_root, TraceFormat format,
    std::vector<std::string>* notes) {
  auto note = [&](const std::string& line) {
    if (notes != nullptr) notes->push_back(line);
  };
  std::vector<CorpusEntry> written;
  for (const FuzzFind& f : report.best) {
    CorpusEntry e;
    e.name = "best_" + f.cell;
    e.axes = parse_fuzz_cell_name(f.cell);
    e.genotype = f.genotype;
    e.perm_rounds = cfg.perm_rounds;
    e.mi_lo = f.mi_bits * 0.5;
    e.mi_hi = 64.0;
    e.p_hi = cfg.p_threshold;
    e.note = "fuzzer best find on " + f.cell +
             " (seed " + std::to_string(cfg.seed) + ")";
    written.push_back(write_corpus_entry(corpus_root, e, format));
    note("wrote " + e.name + ": mi=" + fmt6(written.back().recorded_mi) +
         " p=" + fmt6(written.back().recorded_p));
    if (f.defense != DefenseKind::kNone) continue;

    // The acceptance contrast: the undefended winner re-measured under
    // every defended cell, pinning that each defense keeps suppressing
    // this exact scenario (leakage at most half the undefended leak).
    for (DefenseKind d : cfg.defenses) {
      if (d == DefenseKind::kNone) continue;
      const FuzzCellAxes axes{d, cfg.inclusion, cfg.slice_hash,
                              cfg.monitor_level};
      const std::string cell = fuzz_cell_name(axes);
      const ScenarioOutcome defended = run_fuzz_scenario(
          f.genotype, fuzz_system_config(axes), cfg.perm_rounds);
      if (defended.mi_bits > f.mi_bits * 0.5) {
        note("skipped contrast_" + cell + ": defense does not suppress "
             "this genotype (mi=" + fmt6(defended.mi_bits) +
             " vs undefended " + fmt6(f.mi_bits) +
             ") — that is a finding, not a corpus entry");
        continue;
      }
      CorpusEntry c;
      c.name = "contrast_" + cell;
      c.axes = axes;
      c.genotype = f.genotype;
      c.perm_rounds = cfg.perm_rounds;
      c.mi_lo = 0.0;
      c.mi_hi = f.mi_bits * 0.5;
      c.p_hi = 1.0;  // no significance demanded of a suppressed channel
      c.note = "defense contrast for best_" + f.cell + ": undefended mi=" +
               fmt6(f.mi_bits) + ", must stay suppressed below half";
      written.push_back(write_corpus_entry(corpus_root, c, format));
      note("wrote " + c.name + ": mi=" + fmt6(written.back().recorded_mi) +
           " (undefended " + fmt6(f.mi_bits) + ")");
    }
  }
  return written;
}

}  // namespace pipo
