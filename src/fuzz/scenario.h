// Executes one ScenarioGenotype on one defended machine and scores the
// resulting side channel.
//
// This is the fuzzer's fitness function and the corpus replay's ground
// truth: a genotype plus a (defense x hierarchy-variant) cell fully
// determines the run, byte for byte. The machine is the downscaled
// mini-scale system the attack test suites use (32 KB 8-way 4-slice
// LLC), so thousands of candidate scenarios fit in a CI smoke budget.
//
// The observation channel generalizes the boolean "did the multiply set
// miss" of attack_experiment.h: each observation round yields the
// attacker's *summed probe latency* over the multiply-target eviction
// set, quantized into `obs_bins` equal-width symbols between the
// trace's own min and max (a constant trace collapses to one symbol —
// zero information by construction). Leakage is then the multi-symbol
// plug-in I(K; O) of analysis/leakage.h with its permutation-test
// significance gate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/leakage.h"
#include "analysis/perf_experiment.h"
#include "fuzz/coverage.h"
#include "fuzz/genotype.h"
#include "sim/system.h"
#include "sim/system_config.h"

namespace pipo {

/// One cell of the fuzzer's (defense x hierarchy-variant) grid.
struct FuzzCellAxes {
  DefenseKind defense = DefenseKind::kNone;
  InclusionPolicy inclusion = InclusionPolicy::kInclusive;
  SliceHashKind slice_hash = SliceHashKind::kLowBits;
  MonitorLevel monitor_level = MonitorLevel::kLlc;

  bool operator==(const FuzzCellAxes&) const = default;
};

/// The CLI spelling of a defense ("none|pipo|dir|sharp|bitp|ric") —
/// the inverse of parse_defense (fabric/campaign.h), used in cell names
/// and corpus directory names where to_string()'s display casing
/// ("PiPoMonitor") would be hostile to filesystems and greps.
const char* defense_short_name(DefenseKind k);

/// Canonical cell name, e.g. "pipo_inc_low_llc" — the corpus directory
/// prefix and the failure message's cell identity.
std::string fuzz_cell_name(const FuzzCellAxes& axes);

/// Parses fuzz_cell_name's output back into axes; throws
/// std::invalid_argument naming the bad component.
FuzzCellAxes parse_fuzz_cell_name(const std::string& name);

/// The mini-scale machine (testcfg::mini dimensions) with the cell's
/// defense and hierarchy axes applied.
SystemConfig fuzz_system_config(const FuzzCellAxes& axes);

/// Everything one scenario run produces: the leakage score, the
/// significance gate's verdict, the behavioral coverage signature, and
/// the raw counters the signature was bucketed from.
struct ScenarioOutcome {
  double mi_bits = 0.0;      ///< plug-in I(K; O), bits per iteration
  double p_value = 1.0;      ///< permutation-test significance
  double decoder_acc = 0.0;  ///< empirical MAP decoder accuracy
  std::uint32_t rounds = 0;  ///< observation rounds scored (= key_bits)
  std::vector<std::uint64_t> obs_hist;  ///< obs_bins symbol counts
  System::Stats stats;
  std::uint64_t captures = 0;    ///< active defense's captures
  std::uint64_t prefetches = 0;  ///< active defense's prefetches
  CoverageSignature signature;
};

/// Runs `g` on a machine built from `sys` (normally
/// fuzz_system_config(axes)) and scores the channel with `perm_rounds`
/// permutation-test shuffles. Fully deterministic: the victim key, the
/// bypass-mix stream and the permutation seed all derive from
/// g.key_seed. With `capture` the consumed request streams are
/// additionally recorded to capture->dir/core<i>.trace (the corpus
/// entry's replayable payload); recording is invisible to the run.
ScenarioOutcome run_fuzz_scenario(const ScenarioGenotype& g,
                                  const SystemConfig& sys,
                                  std::uint32_t perm_rounds,
                                  const TraceCapture* capture = nullptr);

}  // namespace pipo
