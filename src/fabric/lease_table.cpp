#include "fabric/lease_table.h"

#include <algorithm>
#include <stdexcept>

namespace pipo {

LeaseTable::LeaseTable(std::uint64_t num_configs, std::uint64_t lease_ms)
    : configs_(num_configs), lease_ms_(lease_ms), pending_(num_configs) {
  if (lease_ms == 0) {
    throw std::invalid_argument("LeaseTable: lease_ms must be >= 1");
  }
}

std::optional<LeaseTable::Grant> LeaseTable::acquire(std::uint64_t owner,
                                                     std::uint64_t now_ms) {
  if (pending_ == 0) return std::nullopt;
  for (std::uint64_t id = scan_from_; id < configs_.size(); ++id) {
    Entry& e = configs_[id];
    if (e.state != State::kPending) continue;
    e.state = State::kLeased;
    e.lease_id = next_lease_id_++;
    e.owner = owner;
    e.deadline_ms = now_ms + lease_ms_;
    --pending_;
    scan_from_ = id + 1;
    return Grant{e.lease_id, id};
  }
  // pending_ > 0 guarantees the loop found one; reaching here means the
  // counters and the entries disagree.
  throw std::logic_error("LeaseTable: pending counter out of sync");
}

bool LeaseTable::complete(std::uint64_t config_id) {
  if (config_id >= configs_.size()) return false;
  Entry& e = configs_[config_id];
  if (e.state == State::kDone) return false;  // duplicate: dedupe
  if (e.state == State::kPending) {
    // A completion for an expired-and-not-yet-reassigned lease: the
    // work is done, accept it.
    --pending_;
  }
  e.state = State::kDone;
  ++completed_;
  return true;
}

std::uint64_t LeaseTable::release_owner(std::uint64_t owner) {
  std::uint64_t released = 0;
  for (std::uint64_t id = 0; id < configs_.size(); ++id) {
    Entry& e = configs_[id];
    if (e.state == State::kLeased && e.owner == owner) {
      e.state = State::kPending;
      ++pending_;
      ++released;
      scan_from_ = std::min(scan_from_, id);
    }
  }
  return released;
}

std::uint64_t LeaseTable::expire(std::uint64_t now_ms) {
  std::uint64_t expired = 0;
  for (std::uint64_t id = 0; id < configs_.size(); ++id) {
    Entry& e = configs_[id];
    if (e.state == State::kLeased && e.deadline_ms <= now_ms) {
      e.state = State::kPending;
      ++pending_;
      ++expired;
      scan_from_ = std::min(scan_from_, id);
    }
  }
  return expired;
}

std::uint64_t LeaseTable::next_deadline() const {
  std::uint64_t best = UINT64_MAX;
  for (const Entry& e : configs_) {
    if (e.state == State::kLeased) best = std::min(best, e.deadline_ms);
  }
  return best;
}

}  // namespace pipo
