#include "fabric/campaign.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <stdexcept>

#include "fuzz/genotype.h"
#include "fuzz/scenario.h"
#include "workload/mixes.h"

namespace pipo {

namespace {

/// Any core<i>.trace file marks a scenario directory — captures need
/// not start at core 0 (assign_trace_scenario idle-fills gaps). The
/// naming contract itself lives in analysis/perf_experiment.h.
bool has_core_traces(const std::filesystem::path& dir) {
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (is_core_trace_name(entry.path().filename().string())) return true;
  }
  return false;
}

/// Scenario label for the JSON record: the last path component, robust
/// to trailing slashes ("rec/scen/" must label as "scen", not "") so
/// compare_replay_stats.py can key the record to its live counterpart.
std::string scenario_name(const std::filesystem::path& p) {
  std::string s = p.lexically_normal().string();
  while (s.size() > 1 &&
         s.back() == std::filesystem::path::preferred_separator) {
    s.pop_back();
  }
  const std::string name = std::filesystem::path(s).filename().string();
  return name.empty() || name == "." ? s : name;
}

}  // namespace

void CampaignSpec::validate() const {
  if (run_mixes &&
      (mix_lo < 1 || mix_hi > num_mixes() || mix_lo > mix_hi)) {
    throw std::invalid_argument("mix range out of 1.." +
                                std::to_string(num_mixes()));
  }
  if (defenses.empty()) {
    throw std::invalid_argument("campaign has no defenses");
  }
  if (!run_mixes && scenarios.empty() && fuzz.empty()) {
    throw std::invalid_argument(
        "campaign runs neither mixes nor trace scenarios nor fuzz cells");
  }
  for (const FuzzCell& cell : fuzz) {
    if (cell.name.empty() || cell.genotype.empty()) {
      throw std::invalid_argument(
          "fuzz cell needs a name and a genotype string");
    }
  }
  if (!fuzz.empty() && fuzz_perm_rounds == 0) {
    throw std::invalid_argument(
        "fuzz cells need fuzz_perm_rounds >= 1 (the significance gate)");
  }
  if (run_mixes && seeds == 0) {
    throw std::invalid_argument("campaign needs at least one seed");
  }
  if (!run_mixes && !record_dir.empty()) {
    // Only mix configurations are recorded (replays already *are*
    // recordings); silently ignoring the capture would look like one.
    throw std::invalid_argument(
        "record_dir applies to mix configurations; enable mixes");
  }
}

std::vector<DefenseKind> all_defenses() {
  return {DefenseKind::kNone,  DefenseKind::kPiPoMonitor,
          DefenseKind::kDirectoryMonitor, DefenseKind::kSharp,
          DefenseKind::kBitp,  DefenseKind::kRic};
}

DefenseKind parse_defense(const std::string& s) {
  if (s == "none") return DefenseKind::kNone;
  if (s == "pipo") return DefenseKind::kPiPoMonitor;
  if (s == "dir") return DefenseKind::kDirectoryMonitor;
  if (s == "sharp") return DefenseKind::kSharp;
  if (s == "bitp") return DefenseKind::kBitp;
  if (s == "ric") return DefenseKind::kRic;
  throw std::invalid_argument("unknown defense: " + s +
                              " (none|pipo|dir|sharp|bitp|ric)");
}

std::vector<DefenseKind> parse_defense_list(const std::string& csv) {
  if (csv == "all") return all_defenses();
  std::vector<DefenseKind> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const auto comma = csv.find(',', start);
    const auto end = comma == std::string::npos ? csv.size() : comma;
    out.push_back(parse_defense(csv.substr(start, end - start)));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

InclusionPolicy parse_inclusion(const std::string& s) {
  if (s == "inc" || s == "inclusive") return InclusionPolicy::kInclusive;
  if (s == "exc" || s == "exclusive") return InclusionPolicy::kExclusive;
  throw std::invalid_argument("unknown inclusion policy: " + s +
                              " (want inc|exc)");
}

MonitorLevel parse_monitor_level(const std::string& s) {
  if (s == "l1") return MonitorLevel::kL1;
  if (s == "l2") return MonitorLevel::kL2;
  if (s == "llc") return MonitorLevel::kLlc;
  throw std::invalid_argument("unknown monitor level: " + s +
                              " (want l1|l2|llc)");
}

std::vector<TraceScenario> expand_trace_paths(
    const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  std::vector<TraceScenario> out;
  for (const std::string& p : paths) {
    if (!fs::exists(p)) {
      throw std::invalid_argument("--trace path does not exist: " + p);
    }
    if (!fs::is_directory(p) || has_core_traces(p)) {
      out.push_back({scenario_name(p), p});
      continue;
    }
    std::vector<TraceScenario> nested;
    for (const auto& entry : fs::directory_iterator(p)) {
      if (entry.is_directory() && has_core_traces(entry.path())) {
        nested.push_back(
            {entry.path().filename().string(), entry.path().string()});
      }
    }
    if (nested.empty()) {
      throw std::invalid_argument(
          "--trace directory has no core<i>.trace files and no scenario "
          "subdirectories: " + p);
    }
    std::sort(nested.begin(), nested.end(),
              [](const TraceScenario& a, const TraceScenario& b) {
                return a.name < b.name;
              });
    out.insert(out.end(), nested.begin(), nested.end());
  }
  return out;
}

std::vector<ConfigKey> enumerate_campaign(const CampaignSpec& spec) {
  std::vector<ConfigKey> keys;
  if (spec.run_mixes) {
    for (unsigned mix = spec.mix_lo; mix <= spec.mix_hi; ++mix) {
      for (DefenseKind kind : spec.defenses) {
        for (unsigned s = 0; s < spec.seeds; ++s) {
          keys.push_back(ConfigKey{mix, kind, 42 + s, -1});
        }
      }
    }
  }
  // Trace replay is deterministic — one run per (scenario, defense),
  // no seed axis.
  for (std::size_t t = 0; t < spec.scenarios.size(); ++t) {
    for (DefenseKind kind : spec.defenses) {
      keys.push_back(ConfigKey{0, kind, 42, static_cast<int>(t), -1});
    }
  }
  // Fuzz cells likewise: every genotype's entire RNG story derives from
  // its own fields, so one run per (genotype, defense).
  for (std::size_t g = 0; g < spec.fuzz.size(); ++g) {
    for (DefenseKind kind : spec.defenses) {
      keys.push_back(ConfigKey{0, kind, 42, -1, static_cast<int>(g)});
    }
  }
  return keys;
}

ConfigResult run_campaign_config(const CampaignSpec& spec,
                                 std::uint64_t config_id,
                                 const ConfigKey& key) {
  ConfigResult out;
  out.config_id = config_id;
  out.key = key;
  if (key.trace >= 0 &&
      static_cast<std::size_t>(key.trace) < spec.scenarios.size()) {
    out.trace_name = spec.scenarios[static_cast<std::size_t>(key.trace)].name;
  }
  if (key.fuzz >= 0 &&
      static_cast<std::size_t>(key.fuzz) < spec.fuzz.size()) {
    out.fuzz_name = spec.fuzz[static_cast<std::size_t>(key.fuzz)].name;
  }
  const auto t0 = std::chrono::steady_clock::now();
  // An escaping exception would take down the whole campaign (or, in
  // the fabric, the worker process); capture it as the structured
  // failure record and let the remaining configurations run.
  try {
    if (key.trace >= 0 &&
        static_cast<std::size_t>(key.trace) >= spec.scenarios.size()) {
      throw std::invalid_argument("config references scenario " +
                                  std::to_string(key.trace) +
                                  " but the campaign has " +
                                  std::to_string(spec.scenarios.size()));
    }
    if (key.fuzz >= 0) {
      if (static_cast<std::size_t>(key.fuzz) >= spec.fuzz.size()) {
        throw std::invalid_argument("config references fuzz cell " +
                                    std::to_string(key.fuzz) +
                                    " but the campaign has " +
                                    std::to_string(spec.fuzz.size()));
      }
      // Fuzz cells run on the fuzzer's mini-scale machine, not the
      // Table II machine — thousands of candidate scenarios must fit in
      // a smoke budget. The campaign's hierarchy axes still apply.
      const FuzzCell& cell = spec.fuzz[static_cast<std::size_t>(key.fuzz)];
      const ScenarioGenotype g = ScenarioGenotype::parse(cell.genotype);
      const FuzzCellAxes axes{key.defense, spec.inclusion, spec.slice_hash,
                              spec.monitor_level};
      const ScenarioOutcome sc =
          run_fuzz_scenario(g, fuzz_system_config(axes),
                            spec.fuzz_perm_rounds);
      out.genotype = cell.genotype;
      out.mi_bits = sc.mi_bits;
      out.p_value = sc.p_value;
      out.decoder_acc = sc.decoder_acc;
      out.fuzz_rounds = sc.rounds;
      out.signature = sc.signature.to_string();
      out.r.stats = sc.stats;
      out.r.captures = sc.captures;
      out.r.prefetches = sc.prefetches;
      const auto t1f = std::chrono::steady_clock::now();
      out.wall_ms =
          std::chrono::duration<double, std::milli>(t1f - t0).count();
      return out;
    }
    SystemConfig cfg = SystemConfig::with_defense(key.defense);
    cfg.shard_threads = spec.shard_threads;
    cfg.epoch_ticks = spec.epoch_ticks;
    cfg.inclusion = spec.inclusion;
    cfg.slice_hash = spec.slice_hash;
    cfg.monitor_level = spec.monitor_level;
    if (key.trace >= 0) {
      out.r = run_trace_perf(
          spec.scenarios[static_cast<std::size_t>(key.trace)].path, cfg,
          spec.trace_prefetch);
    } else if (!spec.record_dir.empty()) {
      const TraceCapture capture{
          spec.record_dir + "/mix" + std::to_string(key.mix) + "_" +
              to_string(key.defense) + "_s" + std::to_string(key.seed),
          spec.record_format};
      out.r = run_mix_perf(key.mix, cfg, spec.instr, key.seed, spec.ws_div,
                           &capture);
    } else {
      out.r = run_mix_perf(key.mix, cfg, spec.instr, key.seed, spec.ws_div);
    }
  } catch (const std::exception& e) {
    out.error = e.what();
    if (out.error.empty()) out.error = "unknown error";
  } catch (...) {
    out.error = "unknown error";
  }
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string config_result_json(const ConfigResult& t, bool include_wall) {
  // Trace scenarios identify themselves by name instead of mix number;
  // the simulated fields are the same, so a replay record diffs cleanly
  // against its live mix record (scripts/compare_replay_stats.py).
  std::string id;
  if (t.key.fuzz >= 0) {
    id = "\"fuzz\": \"" + json_escape(t.fuzz_name) + "\"";
  } else if (t.key.trace >= 0) {
    id = "\"trace\": \"" + json_escape(t.trace_name) + "\"";
  } else {
    id = "\"mix\": " + std::to_string(t.key.mix);
  }
  // The id / error strings are unbounded (trace names, exception
  // messages) — only the numeric tails go through fixed snprintf
  // buffers, so a long path can never truncate a record into bad JSON.
  char buf[448];
  if (!t.error.empty()) {
    // The structured failure record: self-identifying by config id so a
    // distributed merge (or a grep of a huge campaign) can name the
    // failed cell without re-deriving the enumeration.
    std::snprintf(buf, sizeof buf, ", \"defense\": \"%s\", \"seed\": %llu, ",
                  to_string(t.key.defense),
                  static_cast<unsigned long long>(t.key.seed));
    return "{\"config\": " + std::to_string(t.config_id) + ", " + id + buf +
           "\"error\": \"" + json_escape(t.error) + "\"}";
  }
  const System::Stats& s = t.r.stats;
  std::string wall;
  if (include_wall) {
    char wbuf[48];
    std::snprintf(wbuf, sizeof wbuf, ", \"wall_ms\": %.1f", t.wall_ms);
    wall = wbuf;
  }
  if (t.key.fuzz >= 0) {
    // Fuzz cells report the leakage verdict, not the perf fields: the
    // record is what the fuzzer's selection loop (and a human grepping
    // a campaign dump) needs to rank the genotype. The genotype and
    // signature strings are bounded (canonical forms), so the fixed
    // buffer cannot truncate.
    char fbuf[768];
    std::snprintf(
        fbuf, sizeof fbuf,
        ", \"defense\": \"%s\", \"genotype\": \"%s\", "
        "\"mi_bits\": %.6f, \"p_value\": %.6f, \"decoder_acc\": %.6f, "
        "\"rounds\": %u, \"signature\": \"%s\", "
        "\"captures\": %llu, \"prefetches\": %llu, "
        "\"l3_misses\": %llu, \"back_invalidations\": %llu%s}",
        to_string(t.key.defense), json_escape(t.genotype).c_str(),
        t.mi_bits, t.p_value, t.decoder_acc, t.fuzz_rounds,
        t.signature.c_str(),
        static_cast<unsigned long long>(t.r.captures),
        static_cast<unsigned long long>(t.r.prefetches),
        static_cast<unsigned long long>(s.l3_misses),
        static_cast<unsigned long long>(s.back_invalidations),
        wall.c_str());
    return "{\"config\": " + std::to_string(t.config_id) + ", " + id + fbuf;
  }
  std::snprintf(
      buf, sizeof buf,
      ", \"defense\": \"%s\", \"seed\": %llu, "
      "\"exec_time\": %llu, \"instructions\": %llu, "
      "\"prefetches\": %llu, \"captures\": %llu, "
      "\"false_positives_per_mi\": %.4f, "
      "\"l3_hits\": %llu, \"l3_misses\": %llu, "
      "\"back_invalidations\": %llu, \"writebacks\": %llu%s}",
      to_string(t.key.defense),
      static_cast<unsigned long long>(t.key.seed),
      static_cast<unsigned long long>(t.r.exec_time),
      static_cast<unsigned long long>(t.r.instructions),
      static_cast<unsigned long long>(t.r.prefetches),
      static_cast<unsigned long long>(t.r.captures),
      t.r.false_positives_per_mi,
      static_cast<unsigned long long>(s.l3_hits),
      static_cast<unsigned long long>(s.l3_misses),
      static_cast<unsigned long long>(s.back_invalidations),
      static_cast<unsigned long long>(s.writebacks), wall.c_str());
  return "{" + id + buf;
}

void write_campaign_records(std::FILE* f,
                            const std::vector<std::string>& records,
                            const std::string& trailing) {
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const bool last = i + 1 == records.size() && trailing.empty();
    std::fprintf(f, "  %s%s\n", records[i].c_str(), last ? "" : ",");
  }
  if (!trailing.empty()) std::fprintf(f, "  %s\n", trailing.c_str());
  std::fprintf(f, "]\n");
}

}  // namespace pipo
