// Idempotent lease table: the coordinator's source of truth for which
// configuration is pending, leased, or done.
//
// Config-id-keyed state machine (docs/fabric.md has the diagram):
//
//            acquire()                      complete(config)
//   PENDING ───────────► LEASED(lease_id, ─────────────────► DONE
//      ▲                 owner, deadline)                     │
//      │ expire(now) / release_owner(owner)                   │
//      └──────────────────────────────────┘     complete() again → deduped
//
// The invariants that make distributed execution safe:
//
//  * complete() is keyed by config id, not lease id — a completion is
//    accepted whether its lease is live, expired, or was reassigned to
//    another worker in the meantime (the worker did the work; the
//    result is valid either way). It returns true exactly once per
//    config: the first completion wins, every duplicate (retransmitted
//    result, twin completion of a reassigned lease, a FaultyTransport
//    duplication) returns false and is dropped by the caller. No config
//    is ever double-counted.
//  * expire()/release_owner() return a lease to PENDING so it can be
//    reassigned; they never touch DONE. No config is ever lost: any
//    config not DONE is either PENDING (assignable) or LEASED with a
//    deadline after which expire() makes it PENDING again.
//  * acquire() hands out the lowest pending config id with a fresh,
//    never-reused lease id, so grants are deterministic given the call
//    sequence and a stale grant can never be confused with a live one.
//
// Time is a caller-supplied millisecond clock (steady_clock in the
// coordinator, a virtual counter in tests), and the table does no
// locking — the coordinator serializes access (its poll loop plus a
// mutex for in-process workers).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace pipo {

class LeaseTable {
 public:
  /// `num_configs` configs, all initially PENDING. `lease_ms` is the
  /// deadline granted to each lease (>= 1).
  LeaseTable(std::uint64_t num_configs, std::uint64_t lease_ms);

  struct Grant {
    std::uint64_t lease_id = 0;
    std::uint64_t config_id = 0;
  };

  /// Leases the lowest pending config to `owner`; nullopt when nothing
  /// is pending (all leased or done).
  std::optional<Grant> acquire(std::uint64_t owner, std::uint64_t now_ms);

  /// Records a completion for `config_id`. Returns true exactly once
  /// per config (the caller stores the result); false for duplicates
  /// (the caller drops it). Out-of-range ids return false.
  bool complete(std::uint64_t config_id);

  /// Returns every lease owned by `owner` to PENDING (the owner's
  /// connection died). Returns the number of leases released.
  std::uint64_t release_owner(std::uint64_t owner);

  /// Expires every lease whose deadline is <= now_ms, returning each to
  /// PENDING. Returns the number newly expired.
  std::uint64_t expire(std::uint64_t now_ms);

  /// Earliest live-lease deadline, or UINT64_MAX when nothing is
  /// leased — the coordinator's poll timeout.
  std::uint64_t next_deadline() const;

  bool done() const { return completed_ == configs_.size(); }
  std::uint64_t size() const { return configs_.size(); }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t pending() const { return pending_; }
  std::uint64_t leased() const {
    return configs_.size() - completed_ - pending_;
  }
  std::uint64_t lease_ms() const { return lease_ms_; }

 private:
  enum class State : std::uint8_t { kPending, kLeased, kDone };
  struct Entry {
    State state = State::kPending;
    std::uint64_t lease_id = 0;
    std::uint64_t owner = 0;
    std::uint64_t deadline_ms = 0;
  };

  std::vector<Entry> configs_;
  std::uint64_t lease_ms_;
  std::uint64_t next_lease_id_ = 1;
  std::uint64_t completed_ = 0;
  std::uint64_t pending_ = 0;
  /// Scan cursor: config ids below this are never PENDING unless a
  /// lease was returned, which rewinds it — keeps acquire() amortized
  /// O(1) over a campaign instead of O(n) per grant.
  std::uint64_t scan_from_ = 0;
};

}  // namespace pipo
