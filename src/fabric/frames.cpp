#include "fabric/frames.h"

#include <cstring>
#include <stdexcept>
#include <string>

namespace pipo {

const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::kHello: return "Hello";
    case FrameType::kWelcome: return "Welcome";
    case FrameType::kLeaseRequest: return "LeaseRequest";
    case FrameType::kLeaseGrant: return "LeaseGrant";
    case FrameType::kNoWork: return "NoWork";
    case FrameType::kResult: return "Result";
    case FrameType::kHeartbeat: return "Heartbeat";
    case FrameType::kShutdown: return "Shutdown";
  }
  return "?";
}

namespace {

bool known_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::kHello) &&
         t <= static_cast<std::uint8_t>(FrameType::kShutdown);
}

[[noreturn]] void bad_stream(std::uint64_t offset, const std::string& why) {
  throw std::invalid_argument("fabric frame: " + why + " at byte " +
                              std::to_string(offset));
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const Frame& f) {
  if (f.payload.size() > kMaxFramePayload) {
    throw std::invalid_argument(
        "fabric frame: payload of " + std::to_string(f.payload.size()) +
        " bytes exceeds the " + std::to_string(kMaxFramePayload) +
        "-byte limit");
  }
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + f.payload.size());
  out.insert(out.end(), kFabricMagic, kFabricMagic + 4);
  out.push_back(kFabricVersion);
  out.push_back(static_cast<std::uint8_t>(f.type));
  const auto len = static_cast<std::uint32_t>(f.payload.size());
  for (int i = 0; i < 4; ++i) out.push_back((len >> (8 * i)) & 0xFF);
  out.insert(out.end(), f.payload.begin(), f.payload.end());
  return out;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t n) {
  // Drop the consumed prefix before it can grow without bound on a
  // long-lived connection.
  if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= (1u << 16))) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

std::optional<Frame> FrameDecoder::next() {
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderBytes) {
    // Bad magic is provable from the very first wrong byte — report it
    // now rather than stalling forever on a stream that can never
    // yield a frame (e.g. someone pointed a text client at the port).
    for (std::size_t i = 0; i < avail && i < 4; ++i) {
      if (buf_[pos_ + i] != static_cast<std::uint8_t>(kFabricMagic[i])) {
        bad_stream(consumed_ + i, "bad magic (expected \"PFAB\")");
      }
    }
    return std::nullopt;
  }
  const std::uint8_t* h = buf_.data() + pos_;
  if (std::memcmp(h, kFabricMagic, 4) != 0) {
    std::size_t i = 0;
    while (h[i] == static_cast<std::uint8_t>(kFabricMagic[i])) ++i;
    bad_stream(consumed_ + i, "bad magic (expected \"PFAB\")");
  }
  if (h[4] != kFabricVersion) {
    bad_stream(consumed_ + 4,
               "unsupported version " + std::to_string(h[4]) +
                   " (expected " + std::to_string(kFabricVersion) + ")");
  }
  if (!known_type(h[5])) {
    bad_stream(consumed_ + 5,
               "unknown frame type " + std::to_string(h[5]));
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(h[6 + i]) << (8 * i);
  }
  if (len > kMaxFramePayload) {
    bad_stream(consumed_ + 6,
               "payload length " + std::to_string(len) + " exceeds the " +
                   std::to_string(kMaxFramePayload) + "-byte limit");
  }
  if (avail < kFrameHeaderBytes + len) return std::nullopt;
  Frame f;
  f.type = static_cast<FrameType>(h[5]);
  f.payload.assign(h + kFrameHeaderBytes, h + kFrameHeaderBytes + len);
  pos_ += kFrameHeaderBytes + len;
  consumed_ += kFrameHeaderBytes + len;
  return f;
}

// ------------------------------------------------ typed message payloads

namespace {

Frame frame_of(FrameType type, WireWriter&& w) {
  Frame f;
  f.type = type;
  f.payload = w.take();
  return f;
}

WireReader reader_for(const Frame& f, FrameType want) {
  if (f.type != want) {
    throw std::invalid_argument(std::string("fabric frame: expected ") +
                                to_string(want) + ", got " +
                                to_string(f.type));
  }
  return WireReader(f.payload);
}

}  // namespace

Frame make_hello(const HelloMsg& m) {
  WireWriter w;
  w.varint(m.worker_id);
  return frame_of(FrameType::kHello, std::move(w));
}

HelloMsg decode_hello(const Frame& f) {
  WireReader r = reader_for(f, FrameType::kHello);
  HelloMsg m;
  m.worker_id = r.varint("Hello.worker_id");
  r.expect_done("Hello");
  return m;
}

Frame make_welcome(const WelcomeMsg& m) {
  WireWriter w;
  w.varint(m.worker_id);
  encode_campaign_spec(w, m.spec);
  return frame_of(FrameType::kWelcome, std::move(w));
}

WelcomeMsg decode_welcome(const Frame& f) {
  WireReader r = reader_for(f, FrameType::kWelcome);
  WelcomeMsg m;
  m.worker_id = r.varint("Welcome.worker_id");
  m.spec = decode_campaign_spec(r);
  r.expect_done("Welcome");
  return m;
}

Frame make_lease_request() { return Frame{FrameType::kLeaseRequest, {}}; }

Frame make_lease_grant(const LeaseGrantMsg& m) {
  WireWriter w;
  w.varint(m.lease_id);
  w.varint(m.config_id);
  w.varint(m.lease_ms);
  return frame_of(FrameType::kLeaseGrant, std::move(w));
}

LeaseGrantMsg decode_lease_grant(const Frame& f) {
  WireReader r = reader_for(f, FrameType::kLeaseGrant);
  LeaseGrantMsg m;
  m.lease_id = r.varint("LeaseGrant.lease_id");
  m.config_id = r.varint("LeaseGrant.config_id");
  m.lease_ms = r.varint("LeaseGrant.lease_ms");
  r.expect_done("LeaseGrant");
  return m;
}

Frame make_no_work(const NoWorkMsg& m) {
  WireWriter w;
  w.varint(m.retry_ms);
  return frame_of(FrameType::kNoWork, std::move(w));
}

NoWorkMsg decode_no_work(const Frame& f) {
  WireReader r = reader_for(f, FrameType::kNoWork);
  NoWorkMsg m;
  m.retry_ms = r.varint("NoWork.retry_ms");
  r.expect_done("NoWork");
  return m;
}

Frame make_result(const ResultMsg& m) {
  WireWriter w;
  w.varint(m.lease_id);
  w.varint(m.config_id);
  w.u8(m.error ? 1 : 0);
  w.str(m.json);
  return frame_of(FrameType::kResult, std::move(w));
}

ResultMsg decode_result(const Frame& f) {
  WireReader r = reader_for(f, FrameType::kResult);
  ResultMsg m;
  m.lease_id = r.varint("Result.lease_id");
  m.config_id = r.varint("Result.config_id");
  const std::uint8_t err = r.u8("Result.error");
  if (err > 1) r.bad("Result.error", "flag must be 0 or 1");
  m.error = err != 0;
  m.json = r.str("Result.json");
  r.expect_done("Result");
  return m;
}

Frame make_heartbeat() { return Frame{FrameType::kHeartbeat, {}}; }
Frame make_shutdown() { return Frame{FrameType::kShutdown, {}}; }

// -------------------------------------------------- campaign spec wire

void encode_campaign_spec(WireWriter& w, const CampaignSpec& spec) {
  w.u8(spec.run_mixes ? 1 : 0);
  w.varint(spec.mix_lo);
  w.varint(spec.mix_hi);
  w.varint(spec.defenses.size());
  for (DefenseKind k : spec.defenses) w.u8(static_cast<std::uint8_t>(k));
  w.varint(spec.seeds);
  w.varint(spec.instr);
  w.varint(spec.ws_div);
  w.varint(spec.shard_threads);
  w.varint(spec.epoch_ticks);
  w.u8(static_cast<std::uint8_t>(spec.inclusion));
  w.u8(static_cast<std::uint8_t>(spec.slice_hash));
  w.u8(static_cast<std::uint8_t>(spec.monitor_level));
  w.varint(spec.scenarios.size());
  for (const TraceScenario& s : spec.scenarios) {
    w.str(s.name);
    w.str(s.path);
  }
  // v3: fuzz-genotype cells. The genotype travels in its canonical text
  // form — the same bytes the JSON records and the corpus carry, so a
  // wire round trip can never reinterpret a scenario.
  w.varint(spec.fuzz.size());
  for (const FuzzCell& c : spec.fuzz) {
    w.str(c.name);
    w.str(c.genotype);
  }
  w.varint(spec.fuzz_perm_rounds);
  // v4: the scenario-replay decode knob travels so every worker in a
  // distributed sweep runs the same decode path.
  w.u8(spec.trace_prefetch ? 1 : 0);
  // record_dir deliberately does not travel: capture campaigns are
  // standalone-only (each worker would record to its own disk), and the
  // coordinator rejects them before any worker connects.
}

CampaignSpec decode_campaign_spec(WireReader& r) {
  CampaignSpec spec;
  const std::uint8_t mixes = r.u8("spec.run_mixes");
  if (mixes > 1) r.bad("spec.run_mixes", "flag must be 0 or 1");
  spec.run_mixes = mixes != 0;
  spec.mix_lo = static_cast<unsigned>(r.varint("spec.mix_lo"));
  spec.mix_hi = static_cast<unsigned>(r.varint("spec.mix_hi"));
  const std::uint64_t n_def = r.varint("spec.defenses");
  if (n_def > 64) r.bad("spec.defenses", "implausible defense count");
  spec.defenses.clear();
  for (std::uint64_t i = 0; i < n_def; ++i) {
    const std::uint8_t k = r.u8("spec.defense");
    if (k > static_cast<std::uint8_t>(DefenseKind::kRic)) {
      r.bad("spec.defense", "unknown defense kind " + std::to_string(k));
    }
    spec.defenses.push_back(static_cast<DefenseKind>(k));
  }
  spec.seeds = static_cast<unsigned>(r.varint("spec.seeds"));
  spec.instr = r.varint("spec.instr");
  spec.ws_div = r.varint("spec.ws_div");
  spec.shard_threads = static_cast<unsigned>(r.varint("spec.shard_threads"));
  spec.epoch_ticks = r.varint("spec.epoch_ticks");
  const std::uint8_t inc = r.u8("spec.inclusion");
  if (inc > static_cast<std::uint8_t>(InclusionPolicy::kExclusive)) {
    r.bad("spec.inclusion", "unknown inclusion policy " + std::to_string(inc));
  }
  spec.inclusion = static_cast<InclusionPolicy>(inc);
  const std::uint8_t hash = r.u8("spec.slice_hash");
  if (hash > static_cast<std::uint8_t>(SliceHashKind::kIntelCas)) {
    r.bad("spec.slice_hash", "unknown slice hash " + std::to_string(hash));
  }
  spec.slice_hash = static_cast<SliceHashKind>(hash);
  const std::uint8_t lvl = r.u8("spec.monitor_level");
  if (lvl > static_cast<std::uint8_t>(MonitorLevel::kLlc)) {
    r.bad("spec.monitor_level", "unknown monitor level " + std::to_string(lvl));
  }
  spec.monitor_level = static_cast<MonitorLevel>(lvl);
  const std::uint64_t n_scen = r.varint("spec.scenarios");
  if (n_scen > (1u << 16)) r.bad("spec.scenarios", "implausible count");
  for (std::uint64_t i = 0; i < n_scen; ++i) {
    TraceScenario s;
    s.name = r.str("spec.scenario.name");
    s.path = r.str("spec.scenario.path");
    spec.scenarios.push_back(std::move(s));
  }
  const std::uint64_t n_fuzz = r.varint("spec.fuzz");
  if (n_fuzz > (1u << 16)) r.bad("spec.fuzz", "implausible count");
  for (std::uint64_t i = 0; i < n_fuzz; ++i) {
    FuzzCell c;
    c.name = r.str("spec.fuzz.name");
    c.genotype = r.str("spec.fuzz.genotype");
    spec.fuzz.push_back(std::move(c));
  }
  spec.fuzz_perm_rounds =
      static_cast<std::uint32_t>(r.varint("spec.fuzz_perm_rounds"));
  const std::uint8_t pf = r.u8("spec.trace_prefetch");
  if (pf > 1) r.bad("spec.trace_prefetch", "flag must be 0 or 1");
  spec.trace_prefetch = pf != 0;
  return spec;
}

}  // namespace pipo
