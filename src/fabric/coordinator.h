// Campaign coordinator: shards a campaign into config-id-keyed leases,
// hands them to workers (remote over TCP, or in-process threads), and
// merges per-config JSON records into one deterministic output.
//
// Robustness contract (docs/fabric.md spells out each failure mode):
//
//  * Work is handed out as idempotent leases (fabric/lease_table.h) —
//    a crashed, hung or disconnected worker's configs are reassigned
//    when its leases expire or its connection drops, and duplicate
//    completions (retransmits, reassignment twins, injected frame
//    duplication) are deduped by config id. The merged output is
//    therefore byte-identical to a serial run at any worker count,
//    under any kill/restart schedule, and under an injected-fault
//    transport — the oracle tier pins exactly this.
//  * A connection that goes quiet past the heartbeat timeout, sends a
//    malformed frame, or closes is dropped and its leases released;
//    the campaign continues.
//  * Graceful degradation: with no listener (port 0 and no local
//    workers requested, or bind failure — e.g. a sandbox with no
//    network) the coordinator runs the campaign on in-process worker
//    threads that go through the same lease table, so "no fleet" is
//    just the 1-worker point of the same machinery.
//  * Clean shutdown: once every config has a result the coordinator
//    broadcasts Shutdown, drains outbound bytes, and only then closes.
//
// The coordinator is single-threaded (one poll loop); in-process
// workers synchronize with it through one mutex around the lease table
// and result store.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fabric/campaign.h"

namespace pipo {

struct CoordinatorOptions {
  /// TCP listen port; 0 picks an ephemeral port (see port()). Set
  /// listen=false to run without a socket at all.
  std::uint16_t port = 0;
  bool listen = true;
  /// In-process worker threads sharing the lease table. With listen
  /// disabled (or bind failure) and local_workers == 0, one local
  /// worker is forced so the campaign can always make progress.
  unsigned local_workers = 0;
  /// Lease deadline: a config not completed this long after its grant
  /// is reassigned (the holder may have died mid-run).
  std::uint64_t lease_ms = 60'000;
  /// A connection silent this long (no frames, not even heartbeats) is
  /// dropped and its leases released.
  std::uint64_t heartbeat_timeout_ms = 15'000;
  /// Retry hint sent with NoWork when everything is leased.
  std::uint64_t no_work_retry_ms = 20;
  bool verbose = false;  ///< progress lines on stderr
};

struct CampaignOutcome {
  /// One rendered JSON record per config, in config-id order — exactly
  /// what write_campaign_records() serializes.
  std::vector<std::string> records;
  std::uint64_t failed = 0;  ///< configs that produced error records
};

class Coordinator {
 public:
  /// Validates the spec (and rejects capture campaigns — record_dir is
  /// standalone-only); binds the listener unless opt.listen is false.
  /// Throws std::invalid_argument / TransportError.
  Coordinator(CampaignSpec spec, CoordinatorOptions opt);
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// The bound listen port (valid after construction when listening).
  std::uint16_t port() const { return port_; }

  /// Runs the campaign to completion: serves workers until every
  /// config has a result, then shuts down cleanly. Returns records in
  /// config-id order.
  CampaignOutcome run();

 private:
  struct Impl;
  Impl* impl_;
  std::uint16_t port_ = 0;
};

}  // namespace pipo
