#include "fabric/transport.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace pipo {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

}  // namespace

// ------------------------------------------------------------- FdLink

void FdLink::send_all(const void* data, std::size_t n) {
  if (fd_ < 0) throw TransportError("send on closed link");
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t w = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

std::ptrdiff_t FdLink::recv_some(void* data, std::size_t n,
                                 int timeout_ms) {
  if (fd_ < 0) throw TransportError("recv on closed link");
  for (;;) {
    pollfd pfd{fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    if (pr == 0) return -1;  // timeout
    const ssize_t r = ::recv(fd_, data, n, 0);
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      // A peer that vanished (RST after a kill -9) is an EOF-with-
      // prejudice, not a programming error; let the caller's mid-frame
      // check decide whether data was torn.
      if (errno == ECONNRESET) return 0;
      throw_errno("recv");
    }
    return r;
  }
}

void FdLink::close_link() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// --------------------------------------------------------- TCP helpers

std::unique_ptr<ByteLink> tcp_connect(const std::string& host,
                                      std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  const int gr = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
  if (gr != 0) {
    throw TransportError("resolve " + host + ": " + gai_strerror(gr));
  }
  int fd = -1;
  int saved_errno = 0;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      saved_errno = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    saved_errno = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    errno = saved_errno;
    throw_errno("connect " + host + ":" + service);
  }
  // Lease grants and results are small request/response frames; Nagle
  // only adds latency here.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return std::make_unique<FdLink>(fd);
}

int tcp_listen(std::uint16_t& port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("bind port " + std::to_string(port));
  }
  if (::listen(fd, backlog) < 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("listen");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port = ntohs(addr.sin_port);
  }
  return fd;
}

// ------------------------------------------------------ fault injection

void FaultSpec::validate() const {
  if (drop_pct + dup_pct + trunc_pct + delay_pct > 100) {
    throw std::invalid_argument(
        "FaultSpec: drop+dup+trunc+delay rates exceed 100%");
  }
}

FaultyTransport::FaultyTransport(std::unique_ptr<ByteLink> inner,
                                 const FaultSpec& spec)
    : inner_(std::move(inner)), spec_(spec),
      rng_(spec.seed * 0x9E3779B97F4A7C15ull + 0xFA0171ull) {
  spec_.validate();
}

void FaultyTransport::send_all(const void* data, std::size_t n) {
  ++frames_;
  // One draw per frame partitioned by cumulative rates: the schedule is
  // a pure function of (seed, frame index), independent of host timing.
  const std::uint64_t roll = rng_.below(100);
  std::uint64_t edge = spec_.drop_pct;
  if (roll < edge) {
    ++faults_;
    return;  // dropped
  }
  edge += spec_.dup_pct;
  if (roll < edge) {
    ++faults_;
    inner_->send_all(data, n);
    inner_->send_all(data, n);  // duplicated
    return;
  }
  edge += spec_.trunc_pct;
  if (roll < edge) {
    ++faults_;
    // A torn frame desynchronizes the byte stream for good; send the
    // prefix, kill the link, and surface the failure to the sender too.
    const std::size_t keep =
        n > 1 ? 1 + static_cast<std::size_t>(rng_.below(n - 1)) : 0;
    if (keep > 0) inner_->send_all(data, keep);
    inner_->close_link();
    throw TransportError("fault injection: frame truncated after " +
                         std::to_string(keep) + " of " + std::to_string(n) +
                         " bytes");
  }
  edge += spec_.delay_pct;
  if (roll < edge) {
    ++faults_;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(rng_.below(spec_.delay_max_ms + 1)));
  }
  inner_->send_all(data, n);
}

std::ptrdiff_t FaultyTransport::recv_some(void* data, std::size_t n,
                                          int timeout_ms) {
  return inner_->recv_some(data, n, timeout_ms);
}

void FaultyTransport::close_link() { inner_->close_link(); }

// -------------------------------------------------------- frame channel

void FrameChannel::send(const Frame& f) {
  const std::vector<std::uint8_t> bytes = encode_frame(f);
  std::lock_guard<std::mutex> lock(send_mu_);
  link_->send_all(bytes.data(), bytes.size());
}

FrameChannel::Recv FrameChannel::recv(Frame& out, int timeout_ms) {
  const auto started = std::chrono::steady_clock::now();
  for (;;) {
    if (std::optional<Frame> f = decoder_.next()) {
      out = std::move(*f);
      return Recv::kFrame;
    }
    int remaining = timeout_ms;
    if (timeout_ms >= 0) {
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - started)
              .count();
      remaining = static_cast<int>(
          std::max<long long>(0, timeout_ms - elapsed));
    }
    std::uint8_t buf[64 * 1024];
    const std::ptrdiff_t n = link_->recv_some(buf, sizeof buf, remaining);
    if (n == -1) return Recv::kTimeout;
    if (n == 0) {
      if (decoder_.mid_frame()) {
        throw TransportError(
            "connection closed mid-frame (stream truncated after byte " +
            std::to_string(decoder_.byte_offset()) + ")");
      }
      return Recv::kEof;
    }
    decoder_.feed(buf, static_cast<std::size_t>(n));
  }
}

}  // namespace pipo
