#include "fabric/coordinator.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>

#include "common/log.h"
#include "fabric/frames.h"
#include "fabric/lease_table.h"
#include "fabric/transport.h"

namespace pipo {

namespace {

/// Owner ids for in-process workers, disjoint from remote worker ids
/// (which start at 1 and grow by connection count).
constexpr std::uint64_t kLocalOwnerBase = 1ull << 62;

std::uint64_t steady_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

struct Coordinator::Impl {
  CampaignSpec spec;
  CoordinatorOptions opt;
  std::vector<ConfigKey> keys;

  // Guarded by mu (shared with local worker threads).
  std::mutex mu;
  std::unique_ptr<LeaseTable> table;
  struct Rec {
    std::string json;
    bool error = false;
  };
  std::vector<Rec> recs;

  int listen_fd = -1;
  int wake_rd = -1, wake_wr = -1;  ///< local workers nudge the poll loop

  struct Conn {
    int fd = -1;
    FrameDecoder decoder;
    std::vector<std::uint8_t> outbuf;
    std::size_t outpos = 0;
    std::uint64_t worker_id = 0;  ///< 0 until Hello
    std::uint64_t last_seen_ms = 0;
    bool dead = false;
  };
  std::vector<std::unique_ptr<Conn>> conns;
  std::uint64_t next_worker_id = 1;

  std::vector<std::thread> locals;
  std::atomic<bool> stop_locals{false};
  std::uint64_t served_grants = 0;

  ~Impl() {
    stop_locals.store(true, std::memory_order_relaxed);
    for (auto& t : locals) {
      if (t.joinable()) t.join();
    }
    for (auto& c : conns) {
      if (c->fd >= 0) ::close(c->fd);
    }
    if (listen_fd >= 0) ::close(listen_fd);
    if (wake_rd >= 0) ::close(wake_rd);
    if (wake_wr >= 0) ::close(wake_wr);
  }

  void wake() {
    const char b = 1;
    // Best effort: a full pipe already guarantees a pending wakeup.
    [[maybe_unused]] const ssize_t r = ::write(wake_wr, &b, 1);
  }

  // --------------------------------------------------- result plumbing

  /// Returns true if this was the first completion (the result was
  /// recorded); duplicates return false and are dropped.
  bool store_result(std::uint64_t config_id, std::string json, bool error) {
    std::lock_guard<std::mutex> lock(mu);
    if (!table->complete(config_id)) return false;
    recs[config_id].json = std::move(json);
    recs[config_id].error = error;
    return true;
  }

  // ---------------------------------------------------- local workers

  void local_worker(unsigned index) {
    const std::uint64_t owner = kLocalOwnerBase + index;
    for (;;) {
      if (stop_locals.load(std::memory_order_relaxed)) break;
      std::optional<LeaseTable::Grant> grant;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (table->done()) break;
        grant = table->acquire(owner, steady_ms());
      }
      if (!grant) {
        // Everything is leased out (possibly to remote workers); check
        // back shortly — expiry may hand us a straggler.
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        continue;
      }
      ConfigResult r = run_campaign_config(spec, grant->config_id,
                                           keys[grant->config_id]);
      const bool is_err = !r.error.empty();
      if (store_result(grant->config_id,
                       config_result_json(r, /*include_wall=*/false),
                       is_err)) {
        wake();  // the poll loop may be sleeping on our completion
      }
    }
    wake();
  }

  // -------------------------------------------------- connection I/O

  void queue_frame(Conn& c, const Frame& f) {
    const std::vector<std::uint8_t> bytes = encode_frame(f);
    c.outbuf.insert(c.outbuf.end(), bytes.begin(), bytes.end());
    flush(c);
  }

  void flush(Conn& c) {
    while (c.outpos < c.outbuf.size()) {
      const ssize_t w = ::send(c.fd, c.outbuf.data() + c.outpos,
                               c.outbuf.size() - c.outpos, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        drop(c, std::strerror(errno));
        return;
      }
      c.outpos += static_cast<std::size_t>(w);
    }
    if (c.outpos == c.outbuf.size()) {
      c.outbuf.clear();
      c.outpos = 0;
    }
  }

  void drop(Conn& c, const std::string& why) {
    if (c.dead) return;
    c.dead = true;
    if (opt.verbose) {
      PIPO_LOG_INFO("coordinator: dropping worker %llu: %s",
                    static_cast<unsigned long long>(c.worker_id),
                    why.c_str());
    }
    std::uint64_t released = 0;
    if (c.worker_id != 0) {
      std::lock_guard<std::mutex> lock(mu);
      released = table->release_owner(c.worker_id);
    }
    if (released > 0 && opt.verbose) {
      PIPO_LOG_INFO("coordinator: released %llu lease(s)",
                    static_cast<unsigned long long>(released));
    }
  }

  void handle_frame(Conn& c, const Frame& f) {
    c.last_seen_ms = steady_ms();
    switch (f.type) {
      case FrameType::kHello: {
        const HelloMsg m = decode_hello(f);
        // A fresh worker gets the next id; a reconnect keeps its old
        // one. An id we never issued is treated as fresh — trusting it
        // would let a confused peer release another worker's leases.
        if (m.worker_id != 0 && m.worker_id < next_worker_id) {
          c.worker_id = m.worker_id;
          // The previous connection for this identity is stale — its
          // socket may linger half-open for the full heartbeat
          // timeout, holding leases hostage. Drop it now.
          for (auto& other : conns) {
            if (other.get() != &c && !other->dead &&
                other->worker_id == m.worker_id) {
              drop(*other, "superseded by reconnect");
            }
          }
        } else {
          c.worker_id = next_worker_id++;
        }
        queue_frame(c, make_welcome(WelcomeMsg{c.worker_id, spec}));
        break;
      }
      case FrameType::kLeaseRequest: {
        if (c.worker_id == 0) {
          drop(c, "lease request before Hello");
          break;
        }
        std::optional<LeaseTable::Grant> grant;
        bool all_done = false;
        {
          std::lock_guard<std::mutex> lock(mu);
          all_done = table->done();
          if (!all_done) grant = table->acquire(c.worker_id, steady_ms());
        }
        if (all_done) {
          queue_frame(c, make_shutdown());
        } else if (grant) {
          ++served_grants;
          queue_frame(c, make_lease_grant(LeaseGrantMsg{
                             grant->lease_id, grant->config_id,
                             opt.lease_ms}));
        } else {
          queue_frame(c, make_no_work(NoWorkMsg{opt.no_work_retry_ms}));
        }
        break;
      }
      case FrameType::kResult: {
        if (c.worker_id == 0) {
          drop(c, "result before Hello");
          break;
        }
        const ResultMsg m = decode_result(f);
        if (m.config_id >= keys.size()) {
          drop(c, "result for out-of-range config " +
                      std::to_string(m.config_id));
          break;
        }
        if (!store_result(m.config_id, m.json, m.error) && opt.verbose) {
          PIPO_LOG_INFO("coordinator: deduped duplicate result for "
                        "config %llu",
                        static_cast<unsigned long long>(m.config_id));
        }
        break;
      }
      case FrameType::kHeartbeat:
        break;  // last_seen refresh is the whole point
      default:
        // Coordinator-bound streams never carry coordinator->worker
        // frame types.
        drop(c, std::string("unexpected ") + to_string(f.type) + " frame");
        break;
    }
  }

  void read_conn(Conn& c) {
    std::uint8_t buf[64 * 1024];
    for (;;) {
      const ssize_t n = ::recv(c.fd, buf, sizeof buf, 0);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        drop(c, std::strerror(errno));
        return;
      }
      if (n == 0) {
        drop(c, c.decoder.mid_frame()
                    ? "connection closed mid-frame (stream truncated at "
                      "byte " + std::to_string(c.decoder.byte_offset()) + ")"
                    : "connection closed");
        return;
      }
      try {
        c.decoder.feed(buf, static_cast<std::size_t>(n));
        while (std::optional<Frame> f = c.decoder.next()) {
          handle_frame(c, *f);
          if (c.dead) return;
        }
      } catch (const std::invalid_argument& e) {
        // Malformed frame: the codec's diagnostic names the byte
        // offset; the stream is unrecoverable past it.
        drop(c, e.what());
        return;
      }
      if (static_cast<std::size_t>(n) < sizeof buf) return;
    }
  }

  void accept_new() {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) return;  // EAGAIN and transient errors alike
      set_nonblocking(fd);
      auto c = std::make_unique<Conn>();
      c->fd = fd;
      c->last_seen_ms = steady_ms();
      conns.push_back(std::move(c));
      if (opt.verbose) {
        PIPO_LOG_INFO("coordinator: accepted connection (%zu open)",
                      conns.size());
      }
    }
  }

  void reap_dead() {
    for (auto& c : conns) {
      if (c->dead && c->fd >= 0) {
        ::close(c->fd);
        c->fd = -1;
      }
    }
    conns.erase(std::remove_if(conns.begin(), conns.end(),
                               [](const std::unique_ptr<Conn>& c) {
                                 return c->dead;
                               }),
                conns.end());
  }

  bool campaign_done() {
    std::lock_guard<std::mutex> lock(mu);
    return table->done();
  }

  // --------------------------------------------------------- main loop

  void event_loop() {
    while (!campaign_done()) {
      std::vector<pollfd> pfds;
      pfds.push_back(pollfd{wake_rd, POLLIN, 0});
      const std::size_t listener_at = pfds.size();
      if (listen_fd >= 0) pfds.push_back(pollfd{listen_fd, POLLIN, 0});
      const std::size_t conns_at = pfds.size();
      for (auto& c : conns) {
        short events = POLLIN;
        if (c->outpos < c->outbuf.size()) events |= POLLOUT;
        pfds.push_back(pollfd{c->fd, events, 0});
      }

      // Sleep until the next lease deadline (so expiry is prompt) but
      // at most 200 ms (heartbeat bookkeeping), at least 10 ms.
      std::uint64_t deadline;
      {
        std::lock_guard<std::mutex> lock(mu);
        deadline = table->next_deadline();
      }
      const std::uint64_t now = steady_ms();
      std::uint64_t wait = 200;
      if (deadline != UINT64_MAX) {
        wait = deadline > now ? std::min<std::uint64_t>(deadline - now, 200)
                              : 0;
      }
      wait = std::max<std::uint64_t>(wait, conns.empty() ? 10 : 0);

      const int pr = ::poll(pfds.data(), pfds.size(),
                            static_cast<int>(wait));
      if (pr < 0 && errno != EINTR) {
        throw TransportError(std::string("coordinator poll: ") +
                             std::strerror(errno));
      }

      if (pfds[0].revents & POLLIN) {
        char sink[256];
        while (::read(wake_rd, sink, sizeof sink) > 0) {
        }
      }
      if (listen_fd >= 0 && (pfds[listener_at].revents & POLLIN)) {
        accept_new();
      }
      for (std::size_t i = 0; i < conns.size(); ++i) {
        Conn& c = *conns[i];
        const short re = pfds[conns_at + i].revents;
        if (c.dead) continue;
        if (re & (POLLERR | POLLHUP)) {
          // Drain whatever the peer managed to send before the hangup
          // (a worker's final Result may be sitting in the buffer).
          read_conn(c);
          if (!c.dead) drop(c, "hangup");
          continue;
        }
        if (re & POLLIN) read_conn(c);
        if (!c.dead && (re & POLLOUT)) flush(c);
      }

      // Lease expiry: configs stuck on dead-but-undetected workers
      // return to the pool.
      {
        std::lock_guard<std::mutex> lock(mu);
        const std::uint64_t expired = table->expire(steady_ms());
        if (expired > 0 && opt.verbose) {
          PIPO_LOG_INFO("coordinator: %llu lease(s) expired and "
                        "reassignable",
                        static_cast<unsigned long long>(expired));
        }
      }
      // Heartbeat timeouts: a silent connection is a dead worker whose
      // TCP stack never said goodbye (SIGKILL, kernel panic, netsplit).
      const std::uint64_t hb_now = steady_ms();
      for (auto& c : conns) {
        if (!c->dead &&
            hb_now - c->last_seen_ms > opt.heartbeat_timeout_ms) {
          drop(*c, "heartbeat timeout");
        }
      }
      reap_dead();
    }
  }

  void shutdown_workers() {
    // Drain the accept backlog first: a worker whose connect() landed
    // in the queue while the last configs finished deserves its
    // Shutdown like everyone else — closing the listener would reset
    // its connection and send it into a futile reconnect spiral.
    if (listen_fd >= 0) {
      accept_new();
      // Then close the listener so any *later* connect is refused
      // immediately (the worker gives up after max_reconnects) instead
      // of parking in a backlog nobody will ever accept from — a full
      // backlog leaves connect() in SYN-SENT indefinitely.
      ::close(listen_fd);
      listen_fd = -1;
    }
    // Broadcast Shutdown and give the sockets a moment to drain — a
    // worker blocked in recv gets its clean exit instead of an EOF.
    for (auto& c : conns) {
      if (!c->dead) queue_frame(*c, make_shutdown());
    }
    const std::uint64_t give_up = steady_ms() + 250;
    for (;;) {
      bool pending = false;
      for (auto& c : conns) {
        if (!c->dead && c->outpos < c->outbuf.size()) {
          flush(*c);
          pending |= !c->dead && c->outpos < c->outbuf.size();
        }
      }
      if (!pending || steady_ms() >= give_up) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    for (auto& c : conns) {
      if (c->fd >= 0) {
        ::close(c->fd);
        c->fd = -1;
      }
      c->dead = true;
    }
  }
};

Coordinator::Coordinator(CampaignSpec spec, CoordinatorOptions opt)
    : impl_(new Impl) {
  spec.validate();
  if (!spec.record_dir.empty()) {
    delete impl_;
    impl_ = nullptr;
    throw std::invalid_argument(
        "coordinator: capture campaigns (record_dir) are standalone-only "
        "— each worker would record to its own disk");
  }
  impl_->spec = std::move(spec);
  impl_->opt = opt;
  impl_->keys = enumerate_campaign(impl_->spec);
  impl_->table = std::make_unique<LeaseTable>(
      impl_->keys.size(), opt.lease_ms == 0 ? 1 : opt.lease_ms);
  impl_->recs.resize(impl_->keys.size());

  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    delete impl_;
    impl_ = nullptr;
    throw TransportError(std::string("coordinator pipe: ") +
                         std::strerror(errno));
  }
  impl_->wake_rd = pipefd[0];
  impl_->wake_wr = pipefd[1];
  set_nonblocking(impl_->wake_rd);
  set_nonblocking(impl_->wake_wr);

  if (opt.listen) {
    try {
      std::uint16_t port = opt.port;
      impl_->listen_fd = tcp_listen(port, 64);
      set_nonblocking(impl_->listen_fd);
      port_ = port;
    } catch (const TransportError& e) {
      // No network (sandbox, exhausted ports): degrade to in-process
      // execution rather than failing the campaign.
      PIPO_LOG_WARN("coordinator: cannot listen (%s); degrading to "
                    "in-process workers",
                    e.what());
      impl_->listen_fd = -1;
    }
  }
  if (impl_->listen_fd < 0 && impl_->opt.local_workers == 0) {
    impl_->opt.local_workers = 1;
  }
}

Coordinator::~Coordinator() { delete impl_; }

CampaignOutcome Coordinator::run() {
  Impl& im = *impl_;
  CampaignOutcome out;
  if (im.keys.empty()) return out;

  im.locals.reserve(im.opt.local_workers);
  for (unsigned i = 0; i < im.opt.local_workers; ++i) {
    im.locals.emplace_back([&im, i] { im.local_worker(i); });
  }

  im.event_loop();
  im.shutdown_workers();
  for (auto& t : im.locals) t.join();
  im.locals.clear();

  out.records.reserve(im.recs.size());
  for (const Impl::Rec& r : im.recs) {
    out.records.push_back(r.json);
    out.failed += r.error ? 1 : 0;
  }
  return out;
}

}  // namespace pipo
