// Transport for the sweep fabric: blocking byte links over BSD sockets,
// a frame channel that pairs a link with the frame codec, and the
// deterministic fault-injection wrapper the proof layer runs on.
//
// Layering (worker side; the coordinator owns raw nonblocking fds in
// its poll loop instead):
//
//   FrameChannel  — send(Frame)/recv(Frame&) with timeouts; exactly one
//     │             send_all() call per frame (the convention
//     │             FaultyTransport keys on)
//   FaultyTransport (optional) — drops / duplicates / truncates /
//     │             delays whole frames, deterministically from a seed
//   FdLink        — one connected socket (TCP or socketpair)
//
// All transport failures (ECONNREFUSED, EPIPE, mid-frame EOF, an
// injected truncation) throw TransportError; malformed frames throw
// std::invalid_argument from the codec. Callers treat both as "this
// connection is gone" — the worker reconnects with backoff, the
// coordinator releases the connection's leases. Nothing here retries
// silently: retry policy lives in worker.h where it is testable.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>

#include "common/rng.h"
#include "fabric/frames.h"

namespace pipo {

struct TransportError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// A connected, blocking byte-stream endpoint (a socket).
class ByteLink {
 public:
  virtual ~ByteLink() = default;
  /// Writes all n bytes or throws TransportError.
  virtual void send_all(const void* data, std::size_t n) = 0;
  /// Reads up to n bytes. Returns the count (> 0), 0 on EOF, or -1 on
  /// timeout (timeout_ms >= 0; negative blocks forever). Throws
  /// TransportError on socket errors.
  virtual std::ptrdiff_t recv_some(void* data, std::size_t n,
                                   int timeout_ms) = 0;
  /// Idempotent; further sends/recvs fail.
  virtual void close_link() = 0;
};

/// ByteLink over an owned file descriptor (TCP socket or socketpair
/// end). Sends use MSG_NOSIGNAL so a dead peer surfaces as
/// TransportError, not SIGPIPE.
class FdLink final : public ByteLink {
 public:
  explicit FdLink(int fd) : fd_(fd) {}
  ~FdLink() override { close_link(); }
  FdLink(const FdLink&) = delete;
  FdLink& operator=(const FdLink&) = delete;

  void send_all(const void* data, std::size_t n) override;
  std::ptrdiff_t recv_some(void* data, std::size_t n,
                           int timeout_ms) override;
  void close_link() override;

 private:
  int fd_;
};

/// Connects to host:port (IPv4/IPv6, names resolved); throws
/// TransportError with the failing step in the message.
std::unique_ptr<ByteLink> tcp_connect(const std::string& host,
                                      std::uint16_t port);

/// Listens on `port` (0 = ephemeral; the chosen port is written back).
/// Returns the listening fd (nonblocking). Throws TransportError.
int tcp_listen(std::uint16_t& port, int backlog);

// ------------------------------------------------------ fault injection

/// Deterministic per-frame fault plan. Rates are percentages (0-100);
/// at most one fault fires per frame, drawn from one seeded stream, so
/// a (seed, frame sequence) pair always yields the same fault schedule.
struct FaultSpec {
  std::uint64_t seed = 0;
  std::uint32_t drop_pct = 0;      ///< frame silently discarded
  std::uint32_t dup_pct = 0;       ///< frame sent twice
  std::uint32_t trunc_pct = 0;     ///< frame cut mid-bytes, link closed
  std::uint32_t delay_pct = 0;     ///< frame delivered late
  std::uint32_t delay_max_ms = 5;  ///< max injected delay

  bool any() const {
    return drop_pct || dup_pct || trunc_pct || delay_pct;
  }
  void validate() const;  ///< throws if rates exceed 100 in total
};

/// Wraps a link and applies FaultSpec to each send_all() call — i.e. to
/// each frame, per FrameChannel's one-send-per-frame convention.
/// Truncation sends a prefix of the frame, closes the link and throws
/// TransportError (a torn frame is not survivable by a byte stream —
/// the peer sees a mid-frame EOF). Receives pass through untouched.
class FaultyTransport final : public ByteLink {
 public:
  FaultyTransport(std::unique_ptr<ByteLink> inner, const FaultSpec& spec);

  void send_all(const void* data, std::size_t n) override;
  std::ptrdiff_t recv_some(void* data, std::size_t n,
                           int timeout_ms) override;
  void close_link() override;

  std::uint64_t frames_seen() const { return frames_; }
  std::uint64_t faults_injected() const { return faults_; }

 private:
  std::unique_ptr<ByteLink> inner_;
  FaultSpec spec_;
  Rng rng_;
  std::uint64_t frames_ = 0;
  std::uint64_t faults_ = 0;
};

// -------------------------------------------------------- frame channel

/// Blocking frame I/O over a ByteLink. send() is thread-safe (the
/// worker's heartbeat thread shares the channel with its main loop);
/// recv() is single-consumer.
class FrameChannel {
 public:
  explicit FrameChannel(std::unique_ptr<ByteLink> link)
      : link_(std::move(link)) {}

  /// Sends one frame as one send_all. Throws TransportError.
  void send(const Frame& f);

  enum class Recv { kFrame, kTimeout, kEof };
  /// Receives the next frame (timeout_ms < 0 blocks forever). kEof is
  /// a clean close at a frame boundary; a close mid-frame throws
  /// TransportError naming the stream offset, and malformed bytes
  /// throw std::invalid_argument from the decoder.
  Recv recv(Frame& out, int timeout_ms);

  void close() { link_->close_link(); }

 private:
  std::unique_ptr<ByteLink> link_;
  FrameDecoder decoder_;
  std::mutex send_mu_;
};

}  // namespace pipo
