// Campaign = one sweep of (mix x defense x seed) + trace-replay
// configurations, as a value that can be enumerated, executed and
// serialized. This is the code sweep_runner and the distributed fabric
// (fabric/coordinator.h, fabric/worker.h) share so "the same campaign"
// means the same thing everywhere:
//
//  * enumerate_campaign gives every configuration a dense **config id**
//    (its index in the fixed enumeration order: the mix grid first —
//    mixes outer, defenses middle, seeds inner — then scenarios x
//    defenses, then fuzz cells x defenses). Config ids key the fabric's
//    lease table and fix the
//    merged output order, so a distributed campaign's JSON is
//    byte-identical to a serial run no matter which worker ran what.
//  * run_campaign_config executes one configuration and never throws:
//    a per-config failure becomes a structured {"config": ..,
//    "error": ..} record (ConfigResult::error) so one bad configuration
//    cannot take down a million-config campaign.
//  * config_result_json renders the one canonical record form. Both the
//    standalone runner and the fabric emit through it; `include_wall`
//    adds the host-timing field (wall_ms), which deterministic outputs
//    (fabric merges, sweep_runner --deterministic) omit so byte
//    comparison across runs and worker counts is meaningful.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/perf_experiment.h"
#include "sim/system_config.h"
#include "workload/trace_codec.h"

namespace pipo {

/// A replayable scenario: a trace file or a directory of core<i>.trace
/// files (the TraceCapture layout).
struct TraceScenario {
  std::string name;  ///< label for the JSON record
  std::string path;

  bool operator==(const TraceScenario&) const = default;
};

/// A fuzz-genotype cell: one attack scenario (src/fuzz/genotype.h,
/// carried in its canonical "PPG1:..." text form so this header and the
/// wire codec stay independent of the fuzzer) to run against each of
/// the campaign's defenses on the campaign's hierarchy-variant axes.
/// This is how the scenario fuzzer fans candidate populations out
/// through the same lease table, merge order and failure handling as
/// every other campaign.
struct FuzzCell {
  std::string name;      ///< label for the JSON record ("g17" etc.)
  std::string genotype;  ///< ScenarioGenotype canonical text form

  bool operator==(const FuzzCell&) const = default;
};

struct CampaignSpec {
  bool run_mixes = true;  ///< false: trace scenarios only
  unsigned mix_lo = 1, mix_hi = 10;
  std::vector<DefenseKind> defenses;  ///< empty is invalid; see all_defenses()
  unsigned seeds = 1;
  std::uint64_t instr = 200'000;
  std::uint64_t ws_div = 16;
  unsigned shard_threads = 0;        ///< 0 = serial engine inside each sim
  std::uint64_t epoch_ticks = 1024;  ///< shard-engine barrier cadence
  // --- hierarchy variants (defaults = the paper's machine) ---
  InclusionPolicy inclusion = InclusionPolicy::kInclusive;
  SliceHashKind slice_hash = SliceHashKind::kLowBits;
  MonitorLevel monitor_level = MonitorLevel::kLlc;
  std::vector<TraceScenario> scenarios;
  /// Overlap trace decode with simulation for scenario replays
  /// (StreamingTraceWorkload's background prefetch thread). Replay is
  /// byte-identical either way; this is purely a throughput knob, but it
  /// travels on the wire so a distributed sweep runs every worker with
  /// the same decode path.
  bool trace_prefetch = false;
  /// Fuzz-genotype cells: each runs against every defense on the
  /// campaign's hierarchy axes, scored by the multi-symbol leakage
  /// estimator with `fuzz_perm_rounds` significance shuffles.
  std::vector<FuzzCell> fuzz;
  std::uint32_t fuzz_perm_rounds = 200;
  /// Mix-capture directory (standalone sweeps only — the fabric rejects
  /// capture campaigns: workers would each record to their own disk).
  std::string record_dir;
  TraceFormat record_format = TraceFormat::kTextV1;

  /// Throws std::invalid_argument on an impossible campaign (empty mix
  /// range, no defenses, nothing to run).
  void validate() const;

  bool operator==(const CampaignSpec&) const = default;
};

std::vector<DefenseKind> all_defenses();
/// "none|pipo|dir|sharp|bitp|ric" -> kind; throws std::invalid_argument.
DefenseKind parse_defense(const std::string& s);
/// "all" or a comma-separated list of parse_defense names.
std::vector<DefenseKind> parse_defense_list(const std::string& csv);

/// "inc|inclusive" or "exc|exclusive" -> policy; throws
/// std::invalid_argument.
InclusionPolicy parse_inclusion(const std::string& s);
/// "l1|l2|llc" -> level; throws std::invalid_argument.
MonitorLevel parse_monitor_level(const std::string& s);

/// Expands --trace arguments into scenarios: each path is a trace file,
/// a scenario directory holding core<i>.trace files, or a directory of
/// such scenario directories (expanded in name order). Throws
/// std::invalid_argument for missing paths or empty directories.
std::vector<TraceScenario> expand_trace_paths(
    const std::vector<std::string>& paths);

/// One cell of the campaign grid.
struct ConfigKey {
  unsigned mix = 0;  ///< 0 for trace scenarios and fuzz cells
  DefenseKind defense = DefenseKind::kNone;
  std::uint64_t seed = 42;
  int trace = -1;  ///< index into CampaignSpec::scenarios, or -1
  int fuzz = -1;   ///< index into CampaignSpec::fuzz, or -1

  bool operator==(const ConfigKey&) const = default;
};

/// The campaign's full grid in canonical config-id order (the vector
/// index IS the config id).
std::vector<ConfigKey> enumerate_campaign(const CampaignSpec& spec);

struct ConfigResult {
  std::uint64_t config_id = 0;
  ConfigKey key{};
  std::string trace_name;  ///< scenario label when key.trace >= 0
  MixPerfResult r{};
  double wall_ms = 0;  ///< host timing, not simulated
  std::string error;   ///< non-empty: the config failed instead of running
  // --- fuzz-cell results (valid when key.fuzz >= 0; the shared
  // counters — stats, captures, prefetches — reuse `r`) ---
  std::string fuzz_name;  ///< cell label when key.fuzz >= 0
  std::string genotype;   ///< canonical genotype the cell ran
  double mi_bits = 0.0;
  double p_value = 1.0;
  double decoder_acc = 0.0;
  std::uint32_t fuzz_rounds = 0;   ///< observation rounds scored
  std::string signature;           ///< coverage signature hex
};

/// Runs one configuration. Exceptions are captured into
/// ConfigResult::error (the structured failure record) — this function
/// does not throw for per-config failures.
ConfigResult run_campaign_config(const CampaignSpec& spec,
                                 std::uint64_t config_id,
                                 const ConfigKey& key);

std::string json_escape(const std::string& s);

/// One JSON record (no surrounding indentation/comma). Error results
/// render as {"config": N, <identity>, "error": "..."}; successes keep
/// the historical sweep_runner field layout, with wall_ms only when
/// `include_wall` (deterministic outputs must not embed host timing).
std::string config_result_json(const ConfigResult& r, bool include_wall);

/// Writes the campaign output array: records in the given order, plus
/// an optional trailing record (the {"scaling": ...} object); the exact
/// bytes sweep_runner has always produced.
void write_campaign_records(std::FILE* f,
                            const std::vector<std::string>& records,
                            const std::string& trailing = {});

}  // namespace pipo
