// The fabric's frame protocol: every coordinator<->worker message is one
// length-prefixed, versioned, magic-tagged binary frame.
//
// Frame layout (header is 10 bytes, fixed):
//
//   +-------------------+---------+--------+--------------------+
//   | magic "PFAB"      | version | type   | payload length     |
//   | 4 bytes           | 1 byte  | 1 byte | u32 little-endian  |
//   +-------------------+---------+--------+--------------------+
//   | payload (length bytes, wire.h encoding per message type)  |
//   +-----------------------------------------------------------+
//
// The decoder is incremental (feed() bytes as they arrive, next() yields
// complete frames) and rejects every malformed shape *at the earliest
// byte that proves it* — bad magic, unsupported version, unknown type
// and oversized length are all diagnosed from the 10-byte header before
// any payload is buffered, each with the absolute stream offset, the
// same idiom as the binary trace codec (workload/trace_codec.h). A
// connection that closes mid-frame is distinguishable from a clean
// close via mid_frame(), so truncation (a crashed peer, an injected
// fault) never silently looks like an orderly shutdown.
//
// Messages (payload encodings in frames.cpp; unknown types are
// rejected):
//
//   worker -> coordinator          coordinator -> worker
//   ---------------------          ---------------------
//   kHello {worker_id}             kWelcome {worker_id, CampaignSpec}
//   kLeaseRequest {}               kLeaseGrant {lease_id, config_id,
//   kResult {lease_id, config_id,               lease_ms}
//            error, json}          kNoWork {retry_ms}
//   kHeartbeat {}                  kShutdown {}
//
// Results carry the per-config JSON record already rendered by
// campaign.h's one canonical formatter, so merged distributed output is
// byte-identical to serial output by construction.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fabric/campaign.h"
#include "fabric/wire.h"

namespace pipo {

inline constexpr char kFabricMagic[4] = {'P', 'F', 'A', 'B'};
/// v2: CampaignSpec carries the hierarchy-variant axes (inclusion,
/// slice_hash, monitor_level). v3: the spec additionally carries
/// fuzz-genotype cells and their permutation-round budget. v4: the spec
/// carries the trace_prefetch decode knob. Version mismatch is a
/// handshake reject, so an old worker can never silently run a newer
/// campaign with fields dropped (a v2 worker receiving a fuzz campaign
/// would otherwise run zero fuzz configs and still "complete").
inline constexpr std::uint8_t kFabricVersion = 4;
inline constexpr std::size_t kFrameHeaderBytes = 10;
/// Payload ceiling. A real frame is tiny (the largest is a Welcome
/// carrying a campaign spec, or a Result's JSON record — both well under
/// 64 KiB); anything near the ceiling is a corrupt or hostile length
/// field, and rejecting it early keeps a bad peer from ballooning the
/// receive buffer.
inline constexpr std::size_t kMaxFramePayload = 1u << 20;

enum class FrameType : std::uint8_t {
  kHello = 1,
  kWelcome = 2,
  kLeaseRequest = 3,
  kLeaseGrant = 4,
  kNoWork = 5,
  kResult = 6,
  kHeartbeat = 7,
  kShutdown = 8,
};
const char* to_string(FrameType t);

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::vector<std::uint8_t> payload;
};

/// Serializes header + payload into one contiguous buffer (one
/// send_all per frame — the convention FaultyTransport relies on to
/// treat each send as a frame). Throws std::invalid_argument if the
/// payload exceeds kMaxFramePayload.
std::vector<std::uint8_t> encode_frame(const Frame& f);

/// Incremental frame parser over an arbitrary byte-arrival schedule.
class FrameDecoder {
 public:
  /// Appends received bytes. Cheap; validation happens in next().
  void feed(const std::uint8_t* data, std::size_t n);

  /// Returns the next complete frame, or nullopt if more bytes are
  /// needed. Malformed input throws std::invalid_argument naming the
  /// absolute stream byte offset of the offending header field.
  std::optional<Frame> next();

  /// True when a partial frame is buffered — an EOF now is a mid-frame
  /// truncation, not a clean close.
  bool mid_frame() const { return buf_.size() > pos_; }

  /// Absolute offset of the first unconsumed byte (frame boundary).
  std::uint64_t byte_offset() const { return consumed_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;          ///< consumed prefix of buf_
  std::uint64_t consumed_ = 0;   ///< stream offset of buf_[pos_]
};

// ------------------------------------------------ typed message payloads

struct HelloMsg {
  std::uint64_t worker_id = 0;  ///< 0 = new worker, else reconnect identity
};

struct WelcomeMsg {
  std::uint64_t worker_id = 0;
  CampaignSpec spec;
};

struct LeaseGrantMsg {
  std::uint64_t lease_id = 0;
  std::uint64_t config_id = 0;
  std::uint64_t lease_ms = 0;  ///< informational: coordinator's deadline
};

struct NoWorkMsg {
  std::uint64_t retry_ms = 0;  ///< everything is leased; ask again later
};

struct ResultMsg {
  std::uint64_t lease_id = 0;
  std::uint64_t config_id = 0;
  bool error = false;     ///< the json is a structured failure record
  std::string json;       ///< campaign.h config_result_json(…, false)
};

Frame make_hello(const HelloMsg& m);
Frame make_welcome(const WelcomeMsg& m);
Frame make_lease_request();
Frame make_lease_grant(const LeaseGrantMsg& m);
Frame make_no_work(const NoWorkMsg& m);
Frame make_result(const ResultMsg& m);
Frame make_heartbeat();
Frame make_shutdown();

/// Payload decoders: throw std::invalid_argument (field name + payload
/// byte offset) on any malformed payload, including trailing bytes and
/// a frame of the wrong type.
HelloMsg decode_hello(const Frame& f);
WelcomeMsg decode_welcome(const Frame& f);
LeaseGrantMsg decode_lease_grant(const Frame& f);
NoWorkMsg decode_no_work(const Frame& f);
ResultMsg decode_result(const Frame& f);

/// CampaignSpec <-> wire (inside Welcome; exposed for tests).
void encode_campaign_spec(WireWriter& w, const CampaignSpec& spec);
CampaignSpec decode_campaign_spec(WireReader& r);

}  // namespace pipo
