#include "fabric/worker.h"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/log.h"
#include "common/rng.h"
#include "fabric/campaign.h"

namespace pipo {

namespace {

/// Sends a Heartbeat on the shared channel every interval while the
/// main thread is busy simulating. Send failures are swallowed — the
/// main loop's next send/recv surfaces the dead link with a proper
/// diagnostic, and a broken pump must not crash the worker.
class HeartbeatPump {
 public:
  HeartbeatPump(FrameChannel& ch, std::uint64_t interval_ms)
      : ch_(ch), interval_ms_(interval_ms) {
    if (interval_ms_ > 0) {
      thread_ = std::thread([this] { pump(); });
    }
  }

  ~HeartbeatPump() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

 private:
  void pump() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      if (cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                       [this] { return stop_; })) {
        return;
      }
      lock.unlock();
      try {
        ch_.send(make_heartbeat());
      } catch (...) {
        lock.lock();
        return;
      }
      lock.lock();
    }
  }

  FrameChannel& ch_;
  std::uint64_t interval_ms_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace

Worker::Worker(WorkerOptions opt) : opt_(std::move(opt)) {
  opt_.faults.validate();
  if (!opt_.dial) {
    const std::string host = opt_.host;
    const std::uint16_t port = opt_.port;
    opt_.dial = [host, port] { return tcp_connect(host, port); };
  }
}

int Worker::run() {
  Rng rng(opt_.seed * 0x9E3779B97F4A7C15ull + 0x3072ull);
  std::uint64_t backoff = opt_.backoff_base_ms;
  unsigned attempts = 0;
  bool have_spec = false;
  CampaignSpec spec;
  std::vector<ConfigKey> keys;
  std::uint64_t grants = 0;
  // A result computed but not (provably) delivered: re-sent after every
  // reconnect until a send succeeds. The coordinator dedupes.
  std::optional<ResultMsg> pending;

  auto sleep_backoff = [&] {
    // Exponential with "equal jitter": half fixed, half uniform — the
    // stampede-avoidance shape, deterministic from the worker's seed.
    const std::uint64_t base = std::min(backoff, opt_.backoff_max_ms);
    const std::uint64_t ms = base / 2 + rng.below(base / 2 + 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    backoff = std::min(backoff * 2, opt_.backoff_max_ms);
  };

  while (attempts <= opt_.max_reconnects) {
    std::unique_ptr<ByteLink> link;
    try {
      link = opt_.dial();
      if (opt_.faults.any()) {
        // Each connection gets its own fault stream so a reconnect
        // does not replay the exact fault that killed the last link.
        FaultSpec per_link = opt_.faults;
        per_link.seed = opt_.faults.seed + 0x9E37 * (reconnects_ + 1);
        link = std::make_unique<FaultyTransport>(std::move(link), per_link);
      }
    } catch (const TransportError& e) {
      PIPO_LOG_DEBUG("worker: connect failed: %s", e.what());
      ++attempts;
      ++reconnects_;
      sleep_backoff();
      continue;
    }

    FrameChannel ch(std::move(link));
    try {
      ch.send(make_hello(HelloMsg{worker_id_}));
      Frame f;
      const FrameChannel::Recv st = ch.recv(f, opt_.recv_timeout_ms);
      if (st != FrameChannel::Recv::kFrame) {
        throw TransportError(st == FrameChannel::Recv::kTimeout
                                 ? "timed out waiting for Welcome"
                                 : "connection closed before Welcome");
      }
      if (f.type == FrameType::kShutdown) return 0;
      const WelcomeMsg wm = decode_welcome(f);
      worker_id_ = wm.worker_id;
      if (!have_spec) {
        spec = wm.spec;
        keys = enumerate_campaign(spec);
        have_spec = true;
      }
      // Handshake succeeded: the coordinator is alive, so prior
      // failures no longer predict anything.
      attempts = 0;
      backoff = opt_.backoff_base_ms;

      HeartbeatPump pump(ch, opt_.heartbeat_ms);
      for (;;) {
        if (pending) {
          ch.send(make_result(*pending));
          pending.reset();
          if (opt_.die_after_results != 0 &&
              configs_run_ >= opt_.die_after_results) {
            return 3;  // controlled crash: abrupt close, no goodbye
          }
        }
        ch.send(make_lease_request());
        Frame g;
        const FrameChannel::Recv rst = ch.recv(g, opt_.recv_timeout_ms);
        if (rst == FrameChannel::Recv::kTimeout) {
          throw TransportError("timed out waiting for a lease");
        }
        if (rst == FrameChannel::Recv::kEof) {
          throw TransportError("coordinator closed the connection");
        }
        switch (g.type) {
          case FrameType::kLeaseGrant: {
            const LeaseGrantMsg gm = decode_lease_grant(g);
            if (gm.config_id >= keys.size()) {
              throw std::invalid_argument(
                  "lease for out-of-range config " +
                  std::to_string(gm.config_id));
            }
            ++grants;
            if (opt_.die_after_grants != 0 &&
                grants >= opt_.die_after_grants) {
              return 3;  // controlled crash while holding the lease
            }
            ConfigResult r = run_campaign_config(spec, gm.config_id,
                                                 keys[gm.config_id]);
            ++configs_run_;
            pending = ResultMsg{
                gm.lease_id, gm.config_id, !r.error.empty(),
                config_result_json(r, /*include_wall=*/false)};
            break;
          }
          case FrameType::kNoWork: {
            const NoWorkMsg nm = decode_no_work(g);
            std::this_thread::sleep_for(std::chrono::milliseconds(
                std::min<std::uint64_t>(nm.retry_ms, 1000)));
            // The campaign may have finished while we slept: take a
            // buffered Shutdown now instead of racing a LeaseRequest
            // against the coordinator's exit.
            Frame peeked;
            if (ch.recv(peeked, 0) == FrameChannel::Recv::kFrame &&
                peeked.type == FrameType::kShutdown) {
              return 0;
            }
            break;
          }
          case FrameType::kShutdown:
            return 0;
          case FrameType::kHeartbeat:
            break;
          default:
            throw std::invalid_argument(
                std::string("unexpected ") + to_string(g.type) +
                " frame from coordinator");
        }
      }
    } catch (const TransportError& e) {
      PIPO_LOG_DEBUG("worker: connection lost: %s", e.what());
    } catch (const std::invalid_argument& e) {
      // Malformed or out-of-protocol stream: unrecoverable on this
      // connection, but a fresh connection may be fine.
      PIPO_LOG_WARN("worker: protocol error: %s", e.what());
    }
    ch.close();
    ++attempts;
    ++reconnects_;
    sleep_backoff();
  }
  PIPO_LOG_WARN("worker: giving up after %u consecutive failed attempts",
                opt_.max_reconnects);
  return 1;
}

}  // namespace pipo
