// Fabric worker: connects to a coordinator, pulls config leases, runs
// each configuration through the existing Simulation engine, and
// streams the rendered JSON record back.
//
// Robustness behavior (the part this header exists to pin down):
//
//  * Reconnect with capped exponential backoff + deterministic jitter
//    (seeded — tests replay the exact schedule). A connection lost for
//    any reason (refused, reset, truncated frame, malformed bytes,
//    recv timeout) costs one attempt; attempts reset after a
//    successful handshake, and the worker gives up after
//    max_reconnects consecutive failures.
//  * A computed result survives reconnects: if the send fails, the
//    worker re-sends the same Result after the next handshake — the
//    coordinator's lease table dedupes if the config was meanwhile
//    re-run elsewhere. Work is never silently discarded.
//  * A heartbeat thread keeps the connection visibly alive while the
//    main thread is deep inside a long simulation, so the coordinator
//    can tell "busy" from "dead".
//  * Controlled-crash hooks (die_after_grants / die_after_results)
//    exist for the fault-injection proof layer and the CI kill test:
//    they make the worker vanish at the two interesting instants —
//    holding an unfinished lease, and right after completing one.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "fabric/transport.h"

namespace pipo {

struct WorkerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Test hook: replaces tcp_connect(host, port) as the way to obtain
  /// a fresh link (e.g. socketpair ends in-process).
  std::function<std::unique_ptr<ByteLink>()> dial;
  /// Fault injection applied to every dialed link (FaultSpec::any()).
  FaultSpec faults;

  std::uint64_t seed = 1;  ///< backoff jitter stream
  std::uint64_t backoff_base_ms = 50;
  std::uint64_t backoff_max_ms = 2000;
  unsigned max_reconnects = 64;  ///< consecutive failures before giving up
  std::uint64_t heartbeat_ms = 1000;
  /// How long to wait for the coordinator's reply to a handshake or
  /// lease request before treating the connection as dead.
  int recv_timeout_ms = 30'000;

  // --- controlled-crash hooks (tests / fault drills) ---
  /// Exit (code 3) immediately after receiving the Nth lease grant,
  /// without running or completing it — the lease must expire and be
  /// reassigned. 0 = never.
  std::uint64_t die_after_grants = 0;
  /// Exit (code 3) right after the Nth Result frame is sent — an
  /// abrupt close with no Shutdown handshake. 0 = never.
  std::uint64_t die_after_results = 0;
};

class Worker {
 public:
  explicit Worker(WorkerOptions opt);

  /// Runs until the coordinator sends Shutdown (returns 0), reconnect
  /// attempts are exhausted (returns 1), or a controlled-crash hook
  /// fires (returns 3).
  int run();

  std::uint64_t configs_run() const { return configs_run_; }
  std::uint64_t reconnects() const { return reconnects_; }
  std::uint64_t worker_id() const { return worker_id_; }

 private:
  WorkerOptions opt_;
  std::uint64_t worker_id_ = 0;
  std::uint64_t configs_run_ = 0;
  std::uint64_t reconnects_ = 0;
};

}  // namespace pipo
