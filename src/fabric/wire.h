// Byte-level serialization primitives for the fabric's frame payloads.
//
// Same conventions as the binary trace codec (workload/trace_codec.h):
// LEB128 varints for integers (at most 10 bytes), fixed little-endian
// for the few width-sensitive fields, strings as varint length + raw
// bytes, doubles as their IEEE-754 bit pattern (bit-exact round trip —
// a result merged through the fabric must not differ in the last ulp
// from one computed locally). WireReader rejects every malformed shape
// (truncated varint, overlong varint, string past the end, trailing
// junk) with std::invalid_argument naming the field and the byte offset
// inside the payload.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace pipo {

class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u32le(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back((v >> (8 * i)) & 0xFF);
  }

  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void str(const std::string& s) {
    varint(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void f64(double d) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof d);
    std::memcpy(&bits, &d, sizeof bits);
    for (int i = 0; i < 8; ++i) buf_.push_back((bits >> (8 * i)) & 0xFF);
  }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit WireReader(const std::vector<std::uint8_t>& v)
      : WireReader(v.data(), v.size()) {}

  std::uint8_t u8(const char* what) {
    need(1, what);
    return data_[pos_++];
  }

  std::uint32_t u32le(const char* what) {
    need(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t varint(const char* what) {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (pos_ >= size_) bad(what, "truncated varint");
      const std::uint8_t b = data_[pos_++];
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if (!(b & 0x80)) {
        if (shift == 63 && (b & 0x7E)) bad(what, "varint overflows 64 bits");
        return v;
      }
    }
    bad(what, "varint longer than 10 bytes");
  }

  std::string str(const char* what,
                  std::size_t max_len = 1 << 20) {
    const std::uint64_t len = varint(what);
    if (len > max_len) bad(what, "string length exceeds limit");
    need(static_cast<std::size_t>(len), what);
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return s;
  }

  double f64(const char* what) {
    need(8, what);
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    double d;
    std::memcpy(&d, &bits, sizeof d);
    return d;
  }

  bool done() const { return pos_ == size_; }
  std::size_t offset() const { return pos_; }

  /// Payload decoders call this last: a payload with trailing bytes is
  /// malformed (a frame type/version mismatch would look like this).
  void expect_done(const char* what) const {
    if (!done()) bad(what, "trailing bytes after payload");
  }

  [[noreturn]] void bad(const char* what, const std::string& why) const {
    throw std::invalid_argument(std::string(what) + ": " + why +
                                " at payload byte " + std::to_string(pos_));
  }

 private:
  void need(std::size_t n, const char* what) const {
    if (size_ - pos_ < n) bad(what, "truncated payload");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace pipo
