#include "mem/mem_controller.h"

namespace pipo {

Tick MemController::occupy_channel(Tick now) {
  const Tick start = busy_until_ > now ? busy_until_ : now;
  total_queue_delay_ += start - now;
  busy_until_ = start + cfg_.channel_occupancy;
  return start;
}

Tick MemController::fetch(Tick now, LineAddr line, Reason reason) {
  (void)line;
  switch (reason) {
    case Reason::kDemand: ++demand_fetches_; break;
    case Reason::kPrefetch: ++prefetch_fetches_; break;
    case Reason::kWriteback: break;  // fetches are never writebacks
  }
  const Tick start = occupy_channel(now);
  return start + cfg_.dram_latency;
}

void MemController::writeback(Tick now, LineAddr line) {
  (void)line;
  ++writebacks_;
  occupy_channel(now);
}

}  // namespace pipo
