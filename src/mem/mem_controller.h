// On-chip memory controller model (Fig 2: the MC hosts the fetch queue
// that both demand misses and PiPoMonitor prefetches go through).
//
// Timing model: a single DRAM channel with fixed access latency
// (Table II: 200 cycles) plus a burst-occupancy term serializing
// back-to-back requests. This captures the two effects the evaluation
// depends on: the large LLC-miss/LLC-hit latency gap that Prime+Probe
// classifies, and bandwidth contention between demand traffic, writebacks
// and monitor prefetches (the reason the paper delays prefetches after a
// pEvict).
#pragma once

#include <cstdint>

#include "common/stats.h"
#include "common/types.h"

namespace pipo {

struct MemConfig {
  std::uint32_t dram_latency = 200;     ///< Table II: 200-cycle latency
  std::uint32_t channel_occupancy = 4;  ///< cycles one burst holds the channel

  static MemConfig paper_default() { return MemConfig{}; }
};

class MemController {
 public:
  explicit MemController(const MemConfig& cfg) : cfg_(cfg) {}

  /// Kind of request, for statistics.
  enum class Reason : std::uint8_t { kDemand, kPrefetch, kWriteback };

  /// Issues a line fetch at `now`; returns the tick at which data is
  /// available at the LLC. Queueing delay accrues when the channel is
  /// still occupied by an earlier burst.
  Tick fetch(Tick now, LineAddr line, Reason reason);

  /// Issues a writeback (not on any load's critical path; modeled only
  /// for channel occupancy and statistics).
  void writeback(Tick now, LineAddr line);

  const MemConfig& config() const { return cfg_; }

  // --- statistics ---
  std::uint64_t demand_fetches() const { return demand_fetches_; }
  std::uint64_t prefetch_fetches() const { return prefetch_fetches_; }
  std::uint64_t writebacks() const { return writebacks_; }
  std::uint64_t total_queue_delay() const { return total_queue_delay_; }
  void reset_stats() {
    demand_fetches_ = prefetch_fetches_ = writebacks_ = 0;
    total_queue_delay_ = 0;
  }

 private:
  Tick occupy_channel(Tick now);

  MemConfig cfg_;
  Tick busy_until_ = 0;
  std::uint64_t demand_fetches_ = 0;
  std::uint64_t prefetch_fetches_ = 0;
  std::uint64_t writebacks_ = 0;
  std::uint64_t total_queue_delay_ = 0;
};

}  // namespace pipo
