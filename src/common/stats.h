// Lightweight statistics registry, modeled on gem5's Stats framework.
//
// Every simulated object (cache, memory controller, PiPoMonitor, core)
// owns named counters and histograms registered into a StatGroup tree.
// At the end of a run the tree can be dumped as an indented text report
// or walked programmatically by the benchmark harnesses.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace pipo {

// Every statistic here has a *mergeable delta* form: a second instance
// accumulated independently (per worker shard, per epoch, per sweep
// task) folds into this one with merge(), and merging deltas in any
// order yields the same result as accumulating directly. The production
// instance of this shape is System::Stats::operator+= — the epoch-shard
// barrier merge (sim/shard_engine.h) folds flat per-slice deltas, not
// StatGroup trees; the registry-level merge here is the same contract
// for harnesses that aggregate StatGroup trees across runs or shards,
// pinned by tests/common/stats_test.cpp.

/// A monotonically increasing 64-bit event counter.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t by = 1) { value_ += by; }
  void reset() { value_ = 0; }
  std::uint64_t value() const { return value_; }

  /// Folds another counter's events into this one.
  void merge(const Counter& o) { value_ += o.value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Mean/min/max/count accumulator for scalar samples (e.g. latencies).
class Accumulator {
 public:
  void sample(double v) {
    if (count_ == 0 || v < min_) min_ = v;
    if (count_ == 0 || v > max_) max_ = v;
    sum_ += v;
    sum_sq_ += v * v;
    ++count_;
  }
  void reset() { *this = Accumulator{}; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  /// Population variance.
  double variance() const {
    if (count_ == 0) return 0.0;
    const double m = mean();
    return sum_sq_ / static_cast<double>(count_) - m * m;
  }

  /// Folds another accumulator's samples into this one: counts and
  /// moment sums add, extrema combine. Equivalent to having sampled both
  /// streams into a single accumulator (floating-point addition order
  /// aside — exact for the integral-valued samples the simulator feeds).
  void merge(const Accumulator& o) {
    if (o.count_ == 0) return;
    if (count_ == 0 || o.min_ < min_) min_ = o.min_;
    if (count_ == 0 || o.max_ > max_) max_ = o.max_;
    sum_ += o.sum_;
    sum_sq_ += o.sum_sq_;
    count_ += o.count_;
  }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0, sum_sq_ = 0.0, min_ = 0.0, max_ = 0.0;
};

/// Fixed-bucket histogram with overflow bucket; bucket i covers
/// [i*width, (i+1)*width).
class Histogram {
 public:
  explicit Histogram(std::size_t num_buckets = 16, double width = 1.0)
      : width_(width), buckets_(num_buckets, 0) {}

  void sample(double v) {
    acc_.sample(v);
    auto idx = static_cast<std::size_t>(v / width_);
    if (idx >= buckets_.size()) {
      ++overflow_;
    } else {
      ++buckets_[idx];
    }
  }
  void reset() {
    acc_.reset();
    overflow_ = 0;
    std::fill(buckets_.begin(), buckets_.end(), std::uint64_t{0});
  }
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }
  std::uint64_t overflow() const { return overflow_; }
  double bucket_width() const { return width_; }
  const Accumulator& summary() const { return acc_; }

  /// Folds another histogram with the same geometry into this one.
  /// Mismatched geometry is a caller bug — there is no meaningful merge
  /// across different bucketings.
  void merge(const Histogram& o) {
    if (o.width_ != width_ || o.buckets_.size() != buckets_.size()) {
      throw std::invalid_argument("Histogram::merge: geometry mismatch");
    }
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      buckets_[i] += o.buckets_[i];
    }
    overflow_ += o.overflow_;
    acc_.merge(o.acc_);
  }

 private:
  double width_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t overflow_ = 0;
  Accumulator acc_;
};

/// A named group of statistics. Groups nest, producing gem5-style
/// dotted stat paths such as `system.l3.slice0.misses`.
class StatGroup {
 public:
  explicit StatGroup(std::string name = "root") : name_(std::move(name)) {}

  StatGroup* add_group(const std::string& name) {
    auto [it, _] = groups_.try_emplace(name, StatGroup(name));
    return &it->second;
  }
  Counter* add_counter(const std::string& name, std::string desc = "") {
    auto [it, _] = counters_.try_emplace(name);
    descs_[name] = std::move(desc);
    return &it->second;
  }
  Accumulator* add_accumulator(const std::string& name, std::string desc = "") {
    auto [it, _] = accs_.try_emplace(name);
    descs_[name] = std::move(desc);
    return &it->second;
  }

  const std::string& name() const { return name_; }

  /// Finds a counter by dotted path relative to this group, or nullptr.
  const Counter* find_counter(const std::string& dotted_path) const;

  /// Dumps the whole subtree as indented text.
  void dump(std::ostream& os, int indent = 0) const;

  /// Resets every statistic in the subtree.
  void reset_all();

  /// Folds another tree's statistics into this one, creating any groups
  /// or stats this tree does not have yet. Commutative over deltas, so a
  /// set of per-shard StatGroup trees merges into the same totals in any
  /// order — the tree-level counterpart of System::Stats::operator+=.
  void merge_from(const StatGroup& o);

 private:
  std::string name_;
  std::map<std::string, StatGroup> groups_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Accumulator> accs_;
  std::map<std::string, std::string> descs_;
};

}  // namespace pipo
