// Small integer/bit helpers used by cache indexing and the cuckoo filter.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>

namespace pipo {

/// True iff v is a power of two (and nonzero).
constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Floor of log2(v); v must be nonzero.
constexpr unsigned log2_floor(std::uint64_t v) {
  return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/// Exact log2 for power-of-two inputs (asserted).
constexpr unsigned log2_exact(std::uint64_t v) {
  assert(is_pow2(v));
  return log2_floor(v);
}

/// Smallest power of two >= v.
constexpr std::uint64_t next_pow2(std::uint64_t v) {
  return v <= 1 ? 1 : std::uint64_t{1} << (log2_floor(v - 1) + 1);
}

/// Extracts bits [lo, lo+width) of v.
constexpr std::uint64_t bits(std::uint64_t v, unsigned lo, unsigned width) {
  return (v >> lo) & ((width >= 64) ? ~std::uint64_t{0}
                                    : ((std::uint64_t{1} << width) - 1));
}

/// Mask with the low `width` bits set.
constexpr std::uint64_t low_mask(unsigned width) {
  return width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
}

/// Ceiling division for unsigned integers.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

}  // namespace pipo
