// Checked numeric parsing for command-line values.
//
// The CLIs used to lean on std::stoul, which has two traps for flag
// values: a leading '-' is accepted and wrapped ("--threads -1" became
// ~4e9 worker threads) and trailing junk is ignored ("--epoch-ticks
// 10x" parsed as 10). parse_uint consumes the whole token or throws,
// rejects signs, and range-checks, so every mistyped flag fails loudly
// with the flag name in the message instead of silently running a
// different experiment. Shared by sweep_runner and the fabric CLIs
// (tools/pipo_coordinator.cpp, tools/pipo_worker.cpp).
#pragma once

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace pipo {

/// Parses `token` as an unsigned decimal integer in [min, max].
/// The entire token must be digits (no sign, no whitespace, no trailing
/// characters, no empty string); violations throw std::invalid_argument
/// naming `what` — pass the flag name so the user sees which value is
/// bad. Hex/octal prefixes are rejected too: flag values are decimal.
inline std::uint64_t parse_uint(const std::string& token, const char* what,
                                std::uint64_t min = 0,
                                std::uint64_t max = UINT64_MAX) {
  auto bad = [&](const std::string& why) -> std::invalid_argument {
    return std::invalid_argument(std::string(what) + ": " + why + ": \"" +
                                 token + "\"");
  };
  if (token.empty()) throw bad("expected a number, got an empty value");
  for (char c : token) {
    if (c < '0' || c > '9') {
      throw bad(c == '-' ? "negative values are not allowed"
                         : "not a decimal number");
    }
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  if (errno == ERANGE || *end != '\0') {
    throw bad("out of range (does not fit in 64 bits)");
  }
  if (v < min || v > max) {
    throw bad("must be in [" + std::to_string(min) + ", " +
              std::to_string(max) + "]");
  }
  return v;
}

/// parse_uint narrowed to `unsigned` (the thread-count flags).
inline unsigned parse_uint32(const std::string& token, const char* what,
                             std::uint64_t min = 0,
                             std::uint64_t max = UINT32_MAX) {
  return static_cast<unsigned>(parse_uint(token, what, min, max));
}

/// Parses `token` as a finite decimal floating-point value in
/// [min, max]. Same contract as parse_uint: the whole token must parse
/// (no trailing junk, no empty string), inf/nan and range violations
/// throw std::invalid_argument naming `what`. Scientific notation
/// ("1e-3") is accepted; a leading '-' is only useful when min < 0.
inline double parse_double(const std::string& token, const char* what,
                           double min = -HUGE_VAL, double max = HUGE_VAL) {
  auto bad = [&](const std::string& why) -> std::invalid_argument {
    return std::invalid_argument(std::string(what) + ": " + why + ": \"" +
                                 token + "\"");
  };
  if (token.empty()) throw bad("expected a number, got an empty value");
  // strtod skips leading whitespace; the flag token must not have any.
  if (std::isspace(static_cast<unsigned char>(token.front()))) {
    throw bad("not a decimal number");
  }
  errno = 0;
  char* end = nullptr;
  // lint:allow(raw-parse) this is the checked-parse implementation
  const double v = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) throw bad("not a decimal number");
  if (errno == ERANGE || !std::isfinite(v)) throw bad("not a finite value");
  if (v < min || v > max) {
    char range[64];
    // lint:allow(float-format) bounds rendered into an error message only
    std::snprintf(range, sizeof range, "must be in [%g, %g]", min, max);
    throw bad(range);
  }
  return v;
}

}  // namespace pipo
