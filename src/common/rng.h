// Deterministic pseudo-random number generation for the simulator.
//
// Everything random in this reproduction (victim-way selection in the
// Auto-Cuckoo filter, workload address streams, attacker fill addresses)
// draws from Xoshiro256** generators seeded explicitly, so every
// experiment is reproducible bit-for-bit from its seed. std::mt19937 is
// avoided because its 2.5 KB state makes per-object generators costly and
// its distributions are not stable across standard library versions.
#pragma once

#include <cstdint>
#include <limits>

namespace pipo {

/// Xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation re-expressed in C++). 256-bit state, period 2^256-1,
/// passes BigCrush; plenty for simulation workloads.
class Rng {
 public:
  /// Seeds the four 64-bit state words from a single seed using
  /// SplitMix64, the initialization recommended by the xoshiro authors.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion.
    auto next = [&seed]() {
      seed += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      return z ^ (z >> 31);
    };
    for (auto& word : state_) word = next();
  }

  /// Next raw 64-bit value.
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be nonzero. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound) {
    __uint128_t m = static_cast<__uint128_t>(next()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) { return uniform() < p; }

  /// Geometric-ish "one in n" helper used by workload generators.
  bool one_in(std::uint64_t n) { return below(n) == 0; }

  /// Forks an independent stream: hashes this generator's next output with
  /// a stream id. Used to give each simulated object its own generator.
  Rng fork(std::uint64_t stream_id) {
    return Rng(next() ^ (stream_id * 0xD1342543DE82EF95ull));
  }

  // UniformRandomBitGenerator interface so <algorithm> shuffles work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace pipo
