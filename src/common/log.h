// Minimal leveled logging. Disabled (kWarn) by default so simulations run
// silently; tests and the examples raise the level to trace protocol
// decisions. Not thread-safe by design — the simulator is single-threaded,
// like gem5's event queue.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

namespace pipo {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3, kTrace = 4 };

class Log {
 public:
  static LogLevel& level() {
    static LogLevel lvl = LogLevel::kWarn;
    return lvl;
  }

  template <typename... Args>
  static void write(LogLevel lvl, const char* tag, const char* fmt,
                    Args&&... args) {
    if (static_cast<int>(lvl) > static_cast<int>(level())) return;
    std::fprintf(stderr, "[%s] ", tag);
    // NOLINTNEXTLINE(cppcoreguidelines-pro-type-vararg): printf-style sink.
    std::fprintf(stderr, fmt, std::forward<Args>(args)...);
    std::fputc('\n', stderr);
  }
};

#define PIPO_LOG_ERROR(...) ::pipo::Log::write(::pipo::LogLevel::kError, "error", __VA_ARGS__)
#define PIPO_LOG_WARN(...) ::pipo::Log::write(::pipo::LogLevel::kWarn, "warn", __VA_ARGS__)
#define PIPO_LOG_INFO(...) ::pipo::Log::write(::pipo::LogLevel::kInfo, "info", __VA_ARGS__)
#define PIPO_LOG_DEBUG(...) ::pipo::Log::write(::pipo::LogLevel::kDebug, "debug", __VA_ARGS__)
#define PIPO_LOG_TRACE(...) ::pipo::Log::write(::pipo::LogLevel::kTrace, "trace", __VA_ARGS__)

}  // namespace pipo
