#include "common/stats.h"

#include <iomanip>

namespace pipo {

const Counter* StatGroup::find_counter(const std::string& dotted_path) const {
  const auto dot = dotted_path.find('.');
  if (dot == std::string::npos) {
    const auto it = counters_.find(dotted_path);
    return it == counters_.end() ? nullptr : &it->second;
  }
  const auto git = groups_.find(dotted_path.substr(0, dot));
  if (git == groups_.end()) return nullptr;
  return git->second.find_counter(dotted_path.substr(dot + 1));
}

void StatGroup::dump(std::ostream& os, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  os << pad << name_ << ":\n";
  for (const auto& [name, c] : counters_) {
    os << pad << "  " << std::left << std::setw(32) << name << ' '
       << c.value();
    const auto dit = descs_.find(name);
    if (dit != descs_.end() && !dit->second.empty()) {
      os << "  # " << dit->second;
    }
    os << '\n';
  }
  for (const auto& [name, a] : accs_) {
    os << pad << "  " << std::left << std::setw(32) << name
       << " mean=" << a.mean() << " min=" << a.min() << " max=" << a.max()
       << " n=" << a.count();
    const auto dit = descs_.find(name);
    if (dit != descs_.end() && !dit->second.empty()) {
      os << "  # " << dit->second;
    }
    os << '\n';
  }
  for (const auto& [_, g] : groups_) g.dump(os, indent + 1);
}

void StatGroup::reset_all() {
  for (auto& [_, c] : counters_) c.reset();
  for (auto& [_, a] : accs_) a.reset();
  for (auto& [_, g] : groups_) g.reset_all();
}

void StatGroup::merge_from(const StatGroup& o) {
  for (const auto& [name, c] : o.counters_) {
    counters_[name].merge(c);
    if (descs_.find(name) == descs_.end()) {
      const auto dit = o.descs_.find(name);
      if (dit != o.descs_.end()) descs_[name] = dit->second;
    }
  }
  for (const auto& [name, a] : o.accs_) {
    accs_[name].merge(a);
    if (descs_.find(name) == descs_.end()) {
      const auto dit = o.descs_.find(name);
      if (dit != o.descs_.end()) descs_[name] = dit->second;
    }
  }
  for (const auto& [name, g] : o.groups_) {
    auto [it, _] = groups_.try_emplace(name, StatGroup(name));
    it->second.merge_from(g);
  }
}

}  // namespace pipo
