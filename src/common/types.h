// Fundamental scalar types shared by every module of the PiPoMonitor
// reproduction: physical addresses, simulation ticks, core identifiers and
// the cache-line geometry constants from Table II of the paper.
#pragma once

#include <cstdint>
#include <cstddef>

namespace pipo {

/// Physical byte address. The simulated machine uses a 48-bit physical
/// address space (the usual x86-64 configuration); we store it in 64 bits.
using Addr = std::uint64_t;

/// Simulation time in clock cycles of the 2.0 GHz core/uncore clock.
/// The paper's latencies (Table II) are all expressed in this clock.
using Tick = std::uint64_t;

/// Identifies one of the processor cores (0..num_cores-1).
using CoreId = std::uint32_t;

/// Sentinel for "no core" (e.g. a hardware-prefetch requester).
inline constexpr CoreId kInvalidCore = static_cast<CoreId>(-1);

/// Cache line size. Fixed at 64 bytes, the value assumed throughout the
/// paper (and by every commercial LLC the attack literature targets).
inline constexpr unsigned kLineSizeBytes = 64;
inline constexpr unsigned kLineShift = 6;  // log2(kLineSizeBytes)

/// A line address: byte address with the block offset stripped
/// (i.e. byte_addr >> kLineShift). Using a distinct alias makes interfaces
/// self-documenting; the type system does not enforce the distinction.
using LineAddr = std::uint64_t;

/// Converts a byte address to the address of the line containing it.
constexpr LineAddr line_of(Addr byte_addr) { return byte_addr >> kLineShift; }

/// Converts a line address back to the byte address of its first byte.
constexpr Addr byte_of(LineAddr line) { return line << kLineShift; }

/// Align a byte address down to its line boundary.
constexpr Addr line_align(Addr byte_addr) {
  return byte_addr & ~static_cast<Addr>(kLineSizeBytes - 1);
}

/// Kind of memory access issued by a core.
enum class AccessType : std::uint8_t {
  kLoad,        ///< data read
  kStore,       ///< data write (requires exclusive ownership under MESI)
  kInstFetch,   ///< instruction fetch (read-only, goes through L1I)
};

/// Returns true for access types that only need a shared copy.
constexpr bool is_read(AccessType t) { return t != AccessType::kStore; }

}  // namespace pipo
