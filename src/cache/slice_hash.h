// Slice-selection hash strategies for the sliced LLC.
//
// Real Intel parts do not route physical addresses to LLC slices by the
// low line bits: the uncore applies an undocumented XOR-of-address-bits
// ("complex addressing") function, recovered by Maurice et al.
// (RAID'15) via performance-counter probing. Slice-targeted eviction-set
// attacks — the construction step of every cross-core Prime+Probe in the
// paper's threat model — therefore face scrambled set congruence, not
// the trivial modulo layout. kLowBits keeps the historical interleave
// (and the byte-identical default); kIntelCas reproduces the recovered
// XOR masks so attack studies meet realistic address scrambling.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "common/types.h"

namespace pipo {

enum class SliceHashKind : std::uint8_t {
  kLowBits,   ///< slice = low line-address bits (historical default)
  kIntelCas,  ///< Intel complex addressing (Maurice et al., RAID'15)
};

/// Slice count ceiling of the kIntelCas masks: three recovered XOR
/// functions give three slice-index bits.
inline constexpr std::uint32_t kMaxIntelCasSlices = 8;

inline const char* to_string(SliceHashKind k) {
  switch (k) {
    case SliceHashKind::kLowBits: return "low-bits";
    case SliceHashKind::kIntelCas: return "intel-cas";
  }
  return "?";
}

/// "low"/"low-bits" or "cas"/"intel-cas" -> kind; nullopt otherwise.
inline std::optional<SliceHashKind> parse_slice_hash(const std::string& s) {
  if (s == "low" || s == "low-bits") return SliceHashKind::kLowBits;
  if (s == "cas" || s == "intel-cas") return SliceHashKind::kIntelCas;
  return std::nullopt;
}

namespace detail {

/// The three per-bit XOR masks of the recovered 2/4/8-slice functions
/// (Maurice et al., Table 1), expressed over byte addresses: slice bit i
/// is the parity of (byte_addr & kCasMask[i]).
inline constexpr std::uint64_t kCasMask[3] = {
    0x1b5f575440ull,
    0x2eb5faa880ull,
    0x3cccc93100ull,
};

inline std::uint32_t parity64(std::uint64_t v) {
  v ^= v >> 32;
  v ^= v >> 16;
  v ^= v >> 8;
  v ^= v >> 4;
  v ^= v >> 2;
  v ^= v >> 1;
  return static_cast<std::uint32_t>(v & 1);
}

}  // namespace detail

/// Routes `line` to one of `num_slices` (a power of two) slices under
/// `kind`. kIntelCas supports at most kMaxIntelCasSlices slices; the
/// first log2(num_slices) mask parities form the slice index, so smaller
/// machines use a prefix of the recovered function.
inline std::uint32_t slice_hash(SliceHashKind kind, LineAddr line,
                                std::uint32_t num_slices) {
  if (kind == SliceHashKind::kLowBits || num_slices == 1) {
    return static_cast<std::uint32_t>(line & (num_slices - 1));
  }
  if (num_slices > kMaxIntelCasSlices) {
    throw std::invalid_argument(
        "intel-cas slice hash supports at most 8 slices");
  }
  const std::uint64_t byte_addr = byte_of(line);
  std::uint32_t slice = 0;
  for (std::uint32_t b = 0; (1u << b) < num_slices; ++b) {
    slice |= detail::parity64(byte_addr & detail::kCasMask[b]) << b;
  }
  return slice;
}

}  // namespace pipo
