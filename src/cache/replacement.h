// Replacement policies for set-associative caches.
//
// The paper's gem5 baseline uses LRU; we additionally provide Random,
// Tree-PLRU and SRRIP so the sensitivity of the attack/defense to the
// LLC replacement policy can be studied (the Prime+Probe literature's
// eviction strategies assume LRU-like behaviour).
//
// A policy instance owns the metadata for ALL sets of one cache array and
// is driven by three events: on_fill, on_access (hit), and victim
// selection. Way indices returned by victim() are always valid ways; the
// caller is responsible for preferring invalid (free) ways before asking
// for a victim.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "cache/cache_config.h"

namespace pipo {

class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  /// A line was filled into (set, way).
  virtual void on_fill(std::size_t set, std::uint32_t way) = 0;
  /// A line at (set, way) was hit.
  virtual void on_access(std::size_t set, std::uint32_t way) = 0;
  /// Chooses the way to evict from `set`.
  virtual std::uint32_t victim(std::size_t set) = 0;
  /// A line at (set, way) was invalidated (back-invalidation / coherence).
  virtual void on_invalidate(std::size_t set, std::uint32_t way) {
    (void)set; (void)way;
  }

  static std::unique_ptr<ReplacementPolicy> create(ReplPolicy kind,
                                                   std::size_t sets,
                                                   std::uint32_t ways,
                                                   std::uint64_t seed);
};

/// True LRU via per-line monotonically increasing access stamps.
class LruPolicy final : public ReplacementPolicy {
 public:
  LruPolicy(std::size_t sets, std::uint32_t ways)
      : ways_(ways), stamp_(sets * ways, 0) {}
  void on_fill(std::size_t set, std::uint32_t way) override { touch(set, way); }
  void on_access(std::size_t set, std::uint32_t way) override { touch(set, way); }
  std::uint32_t victim(std::size_t set) override {
    std::uint32_t best = 0;
    std::uint64_t best_stamp = stamp_[set * ways_];
    for (std::uint32_t w = 1; w < ways_; ++w) {
      if (stamp_[set * ways_ + w] < best_stamp) {
        best_stamp = stamp_[set * ways_ + w];
        best = w;
      }
    }
    return best;
  }
  void on_invalidate(std::size_t set, std::uint32_t way) override {
    stamp_[set * ways_ + way] = 0;  // invalid lines look oldest
  }

 private:
  void touch(std::size_t set, std::uint32_t way) {
    stamp_[set * ways_ + way] = ++clock_;
  }
  std::uint32_t ways_;
  std::uint64_t clock_ = 0;
  std::vector<std::uint64_t> stamp_;
};

/// Uniform-random victim selection.
class RandomPolicy final : public ReplacementPolicy {
 public:
  RandomPolicy(std::uint32_t ways, std::uint64_t seed)
      : ways_(ways), rng_(seed) {}
  void on_fill(std::size_t, std::uint32_t) override {}
  void on_access(std::size_t, std::uint32_t) override {}
  std::uint32_t victim(std::size_t) override {
    return static_cast<std::uint32_t>(rng_.below(ways_));
  }

 private:
  std::uint32_t ways_;
  Rng rng_;
};

/// Tree pseudo-LRU (binary decision tree per set), the policy most
/// commercial L1/L2 caches implement. Requires power-of-two ways.
class TreePlruPolicy final : public ReplacementPolicy {
 public:
  TreePlruPolicy(std::size_t sets, std::uint32_t ways);
  void on_fill(std::size_t set, std::uint32_t way) override { touch(set, way); }
  void on_access(std::size_t set, std::uint32_t way) override { touch(set, way); }
  std::uint32_t victim(std::size_t set) override;

 private:
  void touch(std::size_t set, std::uint32_t way);
  std::uint32_t ways_;
  std::uint32_t levels_;
  // One bit per internal tree node, ways_-1 nodes per set.
  std::vector<std::uint8_t> bits_;
};

/// Static RRIP (SRRIP-HP, Jaleel et al. ISCA'10) with 2-bit re-reference
/// prediction values: insert at RRPV=2 (long), promote to 0 on hit, evict
/// the first way with RRPV=3, aging all ways until one appears.
class SrripPolicy final : public ReplacementPolicy {
 public:
  SrripPolicy(std::size_t sets, std::uint32_t ways)
      : ways_(ways), rrpv_(sets * ways, kMax) {}
  void on_fill(std::size_t set, std::uint32_t way) override {
    rrpv_[set * ways_ + way] = kLong;
  }
  void on_access(std::size_t set, std::uint32_t way) override {
    rrpv_[set * ways_ + way] = 0;
  }
  std::uint32_t victim(std::size_t set) override {
    for (;;) {
      for (std::uint32_t w = 0; w < ways_; ++w) {
        if (rrpv_[set * ways_ + w] >= kMax) return w;
      }
      for (std::uint32_t w = 0; w < ways_; ++w) ++rrpv_[set * ways_ + w];
    }
  }
  void on_invalidate(std::size_t set, std::uint32_t way) override {
    rrpv_[set * ways_ + way] = kMax;
  }

 private:
  static constexpr std::uint8_t kMax = 3;
  static constexpr std::uint8_t kLong = 2;
  std::uint32_t ways_;
  std::vector<std::uint8_t> rrpv_;
};

}  // namespace pipo
