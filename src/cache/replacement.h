// Replacement policies for set-associative caches.
//
// The paper's gem5 baseline uses LRU; we additionally provide Random,
// Tree-PLRU and SRRIP so the sensitivity of the attack/defense to the
// LLC replacement policy can be studied (the Prime+Probe literature's
// eviction strategies assume LRU-like behaviour).
//
// A policy instance owns the metadata for ALL sets of one cache array and
// is driven by three events: on_fill, on_access (hit), and victim
// selection. Way indices returned by victim() are always valid ways; the
// caller is responsible for preferring invalid (free) ways before asking
// for a victim.
//
// Every operation on every policy is O(1) (amortized O(1) for SRRIP's
// aging, which shifts four per-set level masks instead of rewriting every
// way). LRU and SRRIP store one bit per way in 64-bit set-level words —
// the same packed-occupancy trick CacheArray uses — so both require
// ways <= 64. Decision-for-decision equivalence with the seed's naive
// O(ways)-scan implementations is enforced by the differential oracle
// suite in tests/oracle/.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitutil.h"
#include "common/rng.h"
#include "cache/cache_config.h"

namespace pipo {

class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  /// A line was filled into (set, way).
  virtual void on_fill(std::size_t set, std::uint32_t way) = 0;
  /// A line at (set, way) was hit.
  virtual void on_access(std::size_t set, std::uint32_t way) = 0;
  /// Chooses the way to evict from `set`.
  virtual std::uint32_t victim(std::size_t set) = 0;
  /// A line at (set, way) was invalidated (back-invalidation / coherence).
  virtual void on_invalidate(std::size_t set, std::uint32_t way) {
    (void)set; (void)way;
  }

  /// Canonical serialization of the policy state, for the oracle layer's
  /// serialize/replay equality checks: two instances of the same policy
  /// with equal snapshots behave identically forever after. The encoding
  /// is policy-specific (documented at each override); policies whose
  /// decisions draw on hidden RNG state return {}.
  virtual std::vector<std::uint64_t> snapshot() const { return {}; }

  static std::unique_ptr<ReplacementPolicy> create(ReplPolicy kind,
                                                   std::size_t sets,
                                                   std::uint32_t ways,
                                                   std::uint64_t seed);
};

/// True LRU with O(1) victim selection: a doubly-linked recency list per
/// set (head = oldest, tail = most recent) plus a bitmask of ways that
/// "look oldest" (never touched, or invalidated). The mask preserves the
/// seed implementation's tie-breaking exactly: stamp-0 ways are all
/// minimal, and the first-index scan picks the lowest such way — here
/// the mask's lowest set bit.
class LruPolicy final : public ReplacementPolicy {
 public:
  LruPolicy(std::size_t sets, std::uint32_t ways);

  void on_fill(std::size_t set, std::uint32_t way) override { touch(set, way); }
  void on_access(std::size_t set, std::uint32_t way) override {
    touch(set, way);
  }
  std::uint32_t victim(std::size_t set) override {
    if (zero_[set]) {
      return static_cast<std::uint32_t>(std::countr_zero(zero_[set]));
    }
    return heads_[set];
  }
  void on_invalidate(std::size_t set, std::uint32_t way) override {
    const std::uint64_t bit = std::uint64_t{1} << way;
    if (zero_[set] & bit) return;  // already looks oldest
    unlink(set, way);
    zero_[set] |= bit;
  }

  /// Encoding: sets*ways words; word (set, way) is 0 when the way looks
  /// oldest, else 1 + its recency rank from the LRU end.
  std::vector<std::uint64_t> snapshot() const override;

 private:
  static constexpr std::uint8_t kNil = 0xFF;

  void touch(std::size_t set, std::uint32_t way) {
    const std::uint64_t bit = std::uint64_t{1} << way;
    if (zero_[set] & bit) {
      zero_[set] &= ~bit;
    } else if (tails_[set] == way) {
      return;  // already most recent
    } else {
      unlink(set, way);
    }
    const std::size_t base = set * ways_;
    prev_[base + way] = tails_[set];
    next_[base + way] = kNil;
    if (tails_[set] != kNil) next_[base + tails_[set]] = static_cast<std::uint8_t>(way);
    tails_[set] = static_cast<std::uint8_t>(way);
    if (heads_[set] == kNil) heads_[set] = static_cast<std::uint8_t>(way);
  }

  /// Removes a LINKED way from its set's recency list.
  void unlink(std::size_t set, std::uint32_t way) {
    const std::size_t base = set * ways_;
    const std::uint8_t p = prev_[base + way];
    const std::uint8_t n = next_[base + way];
    if (p != kNil) next_[base + p] = n; else heads_[set] = n;
    if (n != kNil) prev_[base + n] = p; else tails_[set] = p;
  }

  std::uint32_t ways_;
  std::size_t sets_;
  std::vector<std::uint64_t> zero_;   ///< per-set mask of oldest-looking ways
  std::vector<std::uint8_t> heads_;   ///< per-set LRU end (kNil = empty)
  std::vector<std::uint8_t> tails_;   ///< per-set MRU end (kNil = empty)
  std::vector<std::uint8_t> prev_;    ///< per-(set,way) list links
  std::vector<std::uint8_t> next_;
};

/// Uniform-random victim selection.
class RandomPolicy final : public ReplacementPolicy {
 public:
  RandomPolicy(std::uint32_t ways, std::uint64_t seed)
      : ways_(ways), rng_(seed) {}
  void on_fill(std::size_t, std::uint32_t) override {}
  void on_access(std::size_t, std::uint32_t) override {}
  std::uint32_t victim(std::size_t) override {
    return static_cast<std::uint32_t>(rng_.below(ways_));
  }

 private:
  std::uint32_t ways_;
  Rng rng_;
};

/// Tree pseudo-LRU (binary decision tree per set), the policy most
/// commercial L1/L2 caches implement. Requires power-of-two ways.
/// Already O(log2 ways) = O(1) for any realizable associativity.
class TreePlruPolicy final : public ReplacementPolicy {
 public:
  TreePlruPolicy(std::size_t sets, std::uint32_t ways);
  void on_fill(std::size_t set, std::uint32_t way) override { touch(set, way); }
  void on_access(std::size_t set, std::uint32_t way) override { touch(set, way); }
  std::uint32_t victim(std::size_t set) override;

  /// Encoding: one word per internal tree node (sets * (ways-1)), the
  /// node's direction bit.
  std::vector<std::uint64_t> snapshot() const override;

 private:
  void touch(std::size_t set, std::uint32_t way);
  std::uint32_t ways_;
  std::uint32_t levels_;
  // One bit per internal tree node, ways_-1 nodes per set.
  std::vector<std::uint8_t> bits_;
};

/// Static RRIP (SRRIP-HP, Jaleel et al. ISCA'10) with 2-bit re-reference
/// prediction values: insert at RRPV=2 (long), promote to 0 on hit, evict
/// the first way with RRPV=3, aging all ways until one appears.
///
/// Representation: four per-set level masks, mask v = the ways whose RRPV
/// is exactly v. A way's RRPV update moves one bit between masks; victim
/// selection is the lowest set bit of mask kMax; and the seed's aging
/// loop — +1 to every way, rescan, repeat — collapses to one shift of
/// the four masks by d = kMax - (highest occupied level), because
/// exactly the ways at that level are first to reach kMax. RRPVs can
/// never leave [0, kMax] (the seed's unsaturated `++rrpv_` relied on
/// aging being unreachable with a way already at kMax to stay bounded);
/// state is canonical by construction.
class SrripPolicy final : public ReplacementPolicy {
 public:
  SrripPolicy(std::size_t sets, std::uint32_t ways);

  void on_fill(std::size_t set, std::uint32_t way) override {
    move_to(set, way, kLong);
  }
  void on_access(std::size_t set, std::uint32_t way) override {
    move_to(set, way, 0);
  }
  std::uint32_t victim(std::size_t set) override {
    std::uint64_t* lv = &level_[set * kLevels];
    if (!lv[kMax]) {
      // Age the set: shift every level up by the distance from the
      // highest occupied level to kMax. The masks partition the ways,
      // so an occupied level below kMax exists whenever kMax is empty.
      unsigned v = kMax - 1;
      while (!lv[v]) --v;
      const unsigned d = kMax - v;
      for (unsigned i = kLevels; i-- > 0;) {
        lv[i] = i >= d ? lv[i - d] : 0;
      }
    }
    return static_cast<std::uint32_t>(std::countr_zero(lv[kMax]));
  }
  void on_invalidate(std::size_t set, std::uint32_t way) override {
    move_to(set, way, kMax);
  }

  /// Encoding: kLevels (= 4) words per set; word (set, v) is the bitmask
  /// of ways whose RRPV is exactly v. The four masks of a set always
  /// partition its ways.
  std::vector<std::uint64_t> snapshot() const override { return level_; }

 private:
  static constexpr std::uint8_t kMax = 3;
  static constexpr std::uint8_t kLong = 2;
  static constexpr unsigned kLevels = kMax + 1;

  void move_to(std::size_t set, std::uint32_t way, unsigned level) {
    // Branchless: clear the way's bit from every level (it is set in
    // exactly one — one 32-byte cache line of straight-line RMWs beats
    // a search with an unpredictable exit level), then set the target.
    std::uint64_t* lv = &level_[set * kLevels];
    const std::uint64_t keep = ~(std::uint64_t{1} << way);
    lv[0] &= keep;
    lv[1] &= keep;
    lv[2] &= keep;
    lv[3] &= keep;
    lv[level] |= ~keep;
  }

  std::vector<std::uint64_t> level_;  ///< kLevels masks per set
};

}  // namespace pipo
