// Physically distributed (sliced) shared LLC, per Fig 2 of the paper:
// "The shared L3 cache is physically distributed as slices". Lines are
// interleaved across slices by a configurable SliceHashKind — the low
// line-address bits (historical default) or Intel complex addressing
// (cache/slice_hash.h) — the slice count must be a power of two, and
// each slice is an independent CacheArray holding an equal share of the
// capacity.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "cache/cache_array.h"
#include "cache/slice_hash.h"
#include "common/bitutil.h"

namespace pipo {

class SlicedCache {
 public:
  /// `total` describes the aggregate LLC (e.g. 4 MB / 16-way / 35 cycles);
  /// each of the `num_slices` slices gets total.size_bytes / num_slices.
  SlicedCache(const CacheConfig& total, std::uint32_t num_slices,
              std::uint64_t seed = 1,
              SliceHashKind hash = SliceHashKind::kLowBits)
      : total_cfg_(total), num_slices_(num_slices), hash_(hash) {
    if (!is_pow2(num_slices) || num_slices == 0) {
      throw std::invalid_argument("LLC slice count must be a power of two");
    }
    if (total.size_bytes % num_slices != 0) {
      throw std::invalid_argument("LLC size must divide evenly into slices");
    }
    if (hash == SliceHashKind::kIntelCas &&
        num_slices > kMaxIntelCasSlices) {
      throw std::invalid_argument(
          "intel-cas slice hash supports at most 8 slices");
    }
    // Low-bits interleave consumes the low line bits for slice
    // selection, so each slice skips them when indexing sets. Complex
    // addressing draws its slice bits from high address bits instead;
    // the low line bits stay available as set index bits.
    const unsigned slice_bits = hash == SliceHashKind::kLowBits
                                    ? log2_exact(num_slices)
                                    : 0;
    CacheConfig per_slice = total;
    per_slice.size_bytes = total.size_bytes / num_slices;
    per_slice.name = total.name + ".slice";
    slices_.reserve(num_slices);
    for (std::uint32_t i = 0; i < num_slices; ++i) {
      slices_.emplace_back(per_slice, slice_bits, seed + i);
    }
  }

  std::uint32_t num_slices() const { return num_slices_; }
  std::uint32_t latency() const { return total_cfg_.latency; }
  const CacheConfig& total_config() const { return total_cfg_; }
  SliceHashKind hash_kind() const { return hash_; }

  std::uint32_t slice_of(LineAddr line) const {
    return slice_hash(hash_, line, num_slices_);
  }

  /// Set index of `line` within its slice — the same pure routing
  /// computation CacheArray::lookup performs, exposed so shard workers
  /// and tests can route without touching mutable array state.
  std::size_t set_index_of(LineAddr line) const {
    const CacheArray& s = slices_[slice_of(line)];
    return static_cast<std::size_t>(line >> s.index_shift()) &
           (s.num_sets() - 1);
  }

  /// Fixed slice->shard ownership map of the epoch-sharded engine
  /// (sim/shard_engine.h): slice i belongs to shard i % num_shards.
  static std::uint32_t shard_of(std::uint32_t slice,
                                std::uint32_t num_shards) {
    return slice % num_shards;
  }

  /// The slices one shard owns under the fixed map — a read-only view
  /// used by the engine's barrier accounting, benches and tests.
  struct ShardView {
    std::uint32_t shard = 0;
    std::uint32_t num_shards = 1;
    std::vector<std::uint32_t> slices;  ///< owned slice indices, ascending
  };
  ShardView shard_view(std::uint32_t shard, std::uint32_t num_shards) const {
    ShardView v{shard, num_shards, {}};
    for (std::uint32_t s = shard; s < num_slices_; s += num_shards) {
      v.slices.push_back(s);
    }
    return v;
  }
  CacheArray& slice(std::uint32_t i) { return slices_[i]; }
  const CacheArray& slice(std::uint32_t i) const { return slices_[i]; }
  CacheArray& slice_for(LineAddr line) { return slices_[slice_of(line)]; }
  const CacheArray& slice_for(LineAddr line) const {
    return slices_[slice_of(line)];
  }

  // Convenience pass-throughs routing by address.
  std::optional<CacheSlot> lookup(LineAddr line) const {
    return slice_for(line).lookup(line);
  }
  CacheLine& line_for(LineAddr line, const CacheSlot& slot) {
    return slice_for(line).line(slot);
  }
  CacheArray::FillResult fill(LineAddr line,
                              VictimChooser* chooser = nullptr) {
    return slice_for(line).fill(line, chooser);
  }
  std::optional<EvictedLine> invalidate(LineAddr line) {
    return slice_for(line).invalidate(line);
  }

  std::uint64_t valid_count() const {
    std::uint64_t n = 0;
    for (const auto& s : slices_) n += s.valid_count();
    return n;
  }

  void clear() {
    for (auto& s : slices_) s.clear();
  }

 private:
  CacheConfig total_cfg_;
  std::uint32_t num_slices_;
  SliceHashKind hash_ = SliceHashKind::kLowBits;
  std::vector<CacheArray> slices_;
};

}  // namespace pipo
