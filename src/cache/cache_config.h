// Geometry and latency configuration for one cache level.
//
// Defaults throughout the repo follow Table II of the paper:
//   L1I/L1D  64 KB, 4-way, 2 cycles, private, inclusive
//   L2      256 KB, 8-way, 18 cycles, private, inclusive
//   L3        4 MB, 16-way, 35 cycles, shared, sliced, inclusive
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/bitutil.h"
#include "common/types.h"

namespace pipo {

/// Replacement policy selector (see cache/replacement.h).
enum class ReplPolicy : std::uint8_t { kLru, kRandom, kTreePlru, kSrrip };

const char* to_string(ReplPolicy p);

struct CacheConfig {
  std::string name = "cache";
  std::uint64_t size_bytes = 64 * 1024;
  std::uint32_t ways = 4;
  std::uint32_t latency = 2;  ///< access (hit) latency in cycles
  ReplPolicy repl = ReplPolicy::kLru;

  std::uint64_t num_lines() const { return size_bytes / kLineSizeBytes; }
  std::uint64_t num_sets() const { return num_lines() / ways; }

  void validate() const {
    if (size_bytes == 0 || size_bytes % kLineSizeBytes != 0) {
      throw std::invalid_argument(name + ": size must be a multiple of the line size");
    }
    if (ways == 0 || num_lines() % ways != 0) {
      throw std::invalid_argument(name + ": ways must divide the line count");
    }
    if (!is_pow2(num_sets())) {
      throw std::invalid_argument(name + ": number of sets must be a power of two");
    }
  }

  // Table II presets.
  static CacheConfig l1i() { return {"l1i", 64 * 1024, 4, 2, ReplPolicy::kLru}; }
  static CacheConfig l1d() { return {"l1d", 64 * 1024, 4, 2, ReplPolicy::kLru}; }
  static CacheConfig l2() { return {"l2", 256 * 1024, 8, 18, ReplPolicy::kLru}; }
  /// Total shared L3 (all slices together).
  static CacheConfig l3() { return {"l3", 4 * 1024 * 1024, 16, 35, ReplPolicy::kLru}; }
};

}  // namespace pipo
