#include "cache/replacement.h"

#include <stdexcept>
#include <string>

#include "common/bitutil.h"

namespace pipo {

const char* to_string(ReplPolicy p) {
  switch (p) {
    case ReplPolicy::kLru: return "lru";
    case ReplPolicy::kRandom: return "random";
    case ReplPolicy::kTreePlru: return "tree-plru";
    case ReplPolicy::kSrrip: return "srrip";
  }
  return "?";
}

std::unique_ptr<ReplacementPolicy> ReplacementPolicy::create(
    ReplPolicy kind, std::size_t sets, std::uint32_t ways,
    std::uint64_t seed) {
  switch (kind) {
    case ReplPolicy::kLru:
      return std::make_unique<LruPolicy>(sets, ways);
    case ReplPolicy::kRandom:
      return std::make_unique<RandomPolicy>(ways, seed);
    case ReplPolicy::kTreePlru:
      return std::make_unique<TreePlruPolicy>(sets, ways);
    case ReplPolicy::kSrrip:
      return std::make_unique<SrripPolicy>(sets, ways);
  }
  throw std::invalid_argument("unknown replacement policy");
}

namespace {

std::uint32_t checked_pow2_ways(std::uint32_t ways) {
  // Validate before log2_exact: its debug assertion would fire first in
  // the member-initializer list and turn the contracted throw into abort.
  if (ways == 0 || !is_pow2(ways)) {
    throw std::invalid_argument("TreePLRU requires power-of-two ways");
  }
  return ways;
}

/// The bitmask-summarized policies keep one bit per way in a 64-bit
/// per-set word (CacheArray's packed-occupancy limit).
std::uint32_t checked_mask_ways(std::uint32_t ways, const char* policy) {
  if (ways == 0 || ways > 64) {
    // Appends rather than operator+ chains: gcc 12's -Wrestrict trips a
    // known false positive on the temporary-concatenation pattern.
    std::string msg = policy;
    msg += " requires 1..64 ways, got ";
    msg += std::to_string(ways);
    throw std::invalid_argument(msg);
  }
  return ways;
}

}  // namespace

LruPolicy::LruPolicy(std::size_t sets, std::uint32_t ways)
    : ways_(checked_mask_ways(ways, "LruPolicy")),
      sets_(sets),
      // Every way starts "oldest-looking" (the seed's stamp 0) and
      // unlinked; the recency lists start empty.
      zero_(sets, low_mask(ways)),
      heads_(sets, kNil),
      tails_(sets, kNil),
      prev_(sets * ways, kNil),
      next_(sets * ways, kNil) {}

std::vector<std::uint64_t> LruPolicy::snapshot() const {
  std::vector<std::uint64_t> s(sets_ * ways_, 0);
  for (std::size_t set = 0; set < sets_; ++set) {
    std::uint64_t rank = 1;
    for (std::uint8_t w = heads_[set]; w != kNil; w = next_[set * ways_ + w]) {
      s[set * ways_ + w] = rank++;
    }
  }
  return s;
}

TreePlruPolicy::TreePlruPolicy(std::size_t sets, std::uint32_t ways)
    : ways_(checked_pow2_ways(ways)),
      levels_(log2_exact(ways)),
      bits_(sets * (ways - 1), 0) {}

void TreePlruPolicy::touch(std::size_t set, std::uint32_t way) {
  if (ways_ == 1) return;  // no tree nodes: bits_ is empty
  // Walk from the root toward `way`, pointing every node AWAY from it.
  std::uint8_t* tree = &bits_[set * (ways_ - 1)];
  std::uint32_t node = 0;
  for (std::uint32_t level = 0; level < levels_; ++level) {
    const std::uint32_t bit = (way >> (levels_ - 1 - level)) & 1u;
    tree[node] = static_cast<std::uint8_t>(bit ^ 1u);  // point to sibling
    node = 2 * node + 1 + bit;
  }
}

std::uint32_t TreePlruPolicy::victim(std::size_t set) {
  if (ways_ == 1) return 0;  // no tree nodes: bits_ is empty
  // Follow the pointers from the root; they indicate the PLRU leaf.
  const std::uint8_t* tree = &bits_[set * (ways_ - 1)];
  std::uint32_t node = 0;
  std::uint32_t way = 0;
  for (std::uint32_t level = 0; level < levels_; ++level) {
    const std::uint32_t bit = tree[node];
    way = (way << 1) | bit;
    node = 2 * node + 1 + bit;
  }
  return way;
}

std::vector<std::uint64_t> TreePlruPolicy::snapshot() const {
  return std::vector<std::uint64_t>(bits_.begin(), bits_.end());
}

SrripPolicy::SrripPolicy(std::size_t sets, std::uint32_t ways)
    : level_(sets * kLevels, 0) {
  checked_mask_ways(ways, "SrripPolicy");
  // Every way starts at RRPV = kMax (empty lines are immediate victims).
  for (std::size_t set = 0; set < sets; ++set) {
    level_[set * kLevels + kMax] = low_mask(ways);
  }
}

}  // namespace pipo
