#include "cache/replacement.h"

#include <stdexcept>

#include "common/bitutil.h"

namespace pipo {

const char* to_string(ReplPolicy p) {
  switch (p) {
    case ReplPolicy::kLru: return "lru";
    case ReplPolicy::kRandom: return "random";
    case ReplPolicy::kTreePlru: return "tree-plru";
    case ReplPolicy::kSrrip: return "srrip";
  }
  return "?";
}

std::unique_ptr<ReplacementPolicy> ReplacementPolicy::create(
    ReplPolicy kind, std::size_t sets, std::uint32_t ways,
    std::uint64_t seed) {
  switch (kind) {
    case ReplPolicy::kLru:
      return std::make_unique<LruPolicy>(sets, ways);
    case ReplPolicy::kRandom:
      return std::make_unique<RandomPolicy>(ways, seed);
    case ReplPolicy::kTreePlru:
      return std::make_unique<TreePlruPolicy>(sets, ways);
    case ReplPolicy::kSrrip:
      return std::make_unique<SrripPolicy>(sets, ways);
  }
  throw std::invalid_argument("unknown replacement policy");
}

namespace {
std::uint32_t checked_pow2_ways(std::uint32_t ways) {
  // Validate before log2_exact: its debug assertion would fire first in
  // the member-initializer list and turn the contracted throw into abort.
  if (ways == 0 || !is_pow2(ways)) {
    throw std::invalid_argument("TreePLRU requires power-of-two ways");
  }
  return ways;
}
}  // namespace

TreePlruPolicy::TreePlruPolicy(std::size_t sets, std::uint32_t ways)
    : ways_(checked_pow2_ways(ways)),
      levels_(log2_exact(ways)),
      bits_(sets * (ways - 1), 0) {}

void TreePlruPolicy::touch(std::size_t set, std::uint32_t way) {
  // Walk from the root toward `way`, pointing every node AWAY from it.
  std::uint8_t* tree = &bits_[set * (ways_ - 1)];
  std::uint32_t node = 0;
  for (std::uint32_t level = 0; level < levels_; ++level) {
    const std::uint32_t bit = (way >> (levels_ - 1 - level)) & 1u;
    tree[node] = static_cast<std::uint8_t>(bit ^ 1u);  // point to sibling
    node = 2 * node + 1 + bit;
  }
}

std::uint32_t TreePlruPolicy::victim(std::size_t set) {
  // Follow the pointers from the root; they indicate the PLRU leaf.
  const std::uint8_t* tree = &bits_[set * (ways_ - 1)];
  std::uint32_t node = 0;
  std::uint32_t way = 0;
  for (std::uint32_t level = 0; level < levels_; ++level) {
    const std::uint32_t bit = tree[node];
    way = (way << 1) | bit;
    node = 2 * node + 1 + bit;
  }
  return way;
}

}  // namespace pipo
