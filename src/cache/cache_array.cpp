#include "cache/cache_array.h"

#include <bit>
#include <cassert>
#include <stdexcept>
#include <string>

namespace pipo {

CacheArray::CacheArray(const CacheConfig& cfg, unsigned index_shift,
                       std::uint64_t seed)
    : cfg_(cfg),
      index_shift_(index_shift),
      sets_(cfg.num_sets()),
      set_mask_(sets_ - 1),
      lines_(sets_ * cfg.ways),
      tags_(sets_ * cfg.ways, 0),
      occ_(sets_, 0),
      repl_(ReplacementPolicy::create(cfg.repl, sets_, cfg.ways, seed)) {
  cfg.validate();
  if (cfg.ways > 64) {
    throw std::invalid_argument(
        "CacheArray: the packed occupancy mask supports at most 64 ways");
  }
}

std::optional<CacheSlot> CacheArray::lookup(LineAddr line) const {
  const std::size_t set = set_of(line);
  const std::uint64_t occ = occ_[set];
  const LineAddr* tags = &tags_[set * cfg_.ways];
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    if (((occ >> w) & 1u) && tags[w] == line) return CacheSlot{set, w};
  }
  return std::nullopt;
}

CacheArray::FillResult CacheArray::fill(LineAddr line_addr,
                                        VictimChooser* chooser) {
  assert(!lookup(line_addr) && "fill() of an already-resident line");
  const std::size_t set = set_of(line_addr);

  // Prefer a free way: first zero bit of the occupancy mask.
  const std::uint64_t occ = occ_[set];
  std::uint32_t way = cfg_.ways;
  const std::uint32_t first_free =
      static_cast<std::uint32_t>(std::countr_one(occ));
  if (first_free < cfg_.ways) way = first_free;

  std::optional<EvictedLine> evicted;
  if (way == cfg_.ways) {
    std::optional<std::uint32_t> override_way;
    if (chooser) {
      override_way = chooser->choose(&lines_[set * cfg_.ways], cfg_.ways);
      assert(!override_way || *override_way < cfg_.ways);
    }
    way = override_way ? *override_way : repl_->victim(set);
    evicted = snapshot(lines_[set * cfg_.ways + way]);
  } else {
    ++valid_count_;
  }

  CacheLine& l = lines_[set * cfg_.ways + way];
  l = CacheLine{};
  l.valid = true;
  l.addr = line_addr;
  tags_[set * cfg_.ways + way] = line_addr;
  occ_[set] |= std::uint64_t{1} << way;
  repl_->on_fill(set, way);
  return FillResult{CacheSlot{set, way}, evicted};
}

std::optional<EvictedLine> CacheArray::invalidate(LineAddr line_addr) {
  const auto slot = lookup(line_addr);
  if (!slot) return std::nullopt;
  CacheLine& l = line(*slot);
  EvictedLine out = snapshot(l);
  l = CacheLine{};
  occ_[slot->set] &= ~(std::uint64_t{1} << slot->way);
  --valid_count_;
  repl_->on_invalidate(slot->set, slot->way);
  return out;
}

std::uint32_t CacheArray::valid_in_set(std::size_t set) const {
  return static_cast<std::uint32_t>(std::popcount(occ_[set]));
}

std::string CacheArray::check_mirror() const {
  std::uint64_t valid = 0;
  for (std::size_t set = 0; set < sets_; ++set) {
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
      const CacheLine& l = lines_[set * cfg_.ways + w];
      const bool occ = (occ_[set] >> w) & 1u;
      if (l.valid != occ) {
        return cfg_.name + ": occupancy bit desync at set " +
               std::to_string(set) + " way " + std::to_string(w);
      }
      if (l.valid && tags_[set * cfg_.ways + w] != l.addr) {
        return cfg_.name + ": tag desync at set " + std::to_string(set) +
               " way " + std::to_string(w);
      }
      valid += l.valid ? 1 : 0;
    }
  }
  if (valid != valid_count_) {
    return cfg_.name + ": valid_count drift (" + std::to_string(valid_count_) +
           " cached vs " + std::to_string(valid) + " actual)";
  }
  return {};
}

void CacheArray::clear() {
  for (CacheLine& l : lines_) l = CacheLine{};
  for (std::uint64_t& o : occ_) o = 0;
  valid_count_ = 0;
}

EvictedLine CacheArray::snapshot(const CacheLine& l) {
  assert(l.valid);
  return EvictedLine{l.addr,     l.state,  l.dirty,      l.presence,
                     l.pp_tag,   l.pp_accessed, l.ever_written};
}

}  // namespace pipo
