#include "cache/cache_array.h"

#include <cassert>

namespace pipo {

CacheArray::CacheArray(const CacheConfig& cfg, unsigned index_shift,
                       std::uint64_t seed)
    : cfg_(cfg),
      index_shift_(index_shift),
      sets_(cfg.num_sets()),
      set_mask_(sets_ - 1),
      lines_(sets_ * cfg.ways),
      repl_(ReplacementPolicy::create(cfg.repl, sets_, cfg.ways, seed)) {
  cfg.validate();
}

std::optional<CacheSlot> CacheArray::lookup(LineAddr line) const {
  const std::size_t set = set_of(line);
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    const CacheLine& l = lines_[set * cfg_.ways + w];
    if (l.valid && l.addr == line) return CacheSlot{set, w};
  }
  return std::nullopt;
}

CacheArray::FillResult CacheArray::fill(LineAddr line_addr,
                                        VictimChooser* chooser) {
  assert(!lookup(line_addr) && "fill() of an already-resident line");
  const std::size_t set = set_of(line_addr);

  // Prefer a free way.
  std::uint32_t way = cfg_.ways;
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    if (!lines_[set * cfg_.ways + w].valid) {
      way = w;
      break;
    }
  }

  std::optional<EvictedLine> evicted;
  if (way == cfg_.ways) {
    std::optional<std::uint32_t> override_way;
    if (chooser) {
      override_way = chooser->choose(&lines_[set * cfg_.ways], cfg_.ways);
      assert(!override_way || *override_way < cfg_.ways);
    }
    way = override_way ? *override_way : repl_->victim(set);
    evicted = snapshot(lines_[set * cfg_.ways + way]);
  }

  CacheLine& l = lines_[set * cfg_.ways + way];
  l = CacheLine{};
  l.valid = true;
  l.addr = line_addr;
  repl_->on_fill(set, way);
  return FillResult{CacheSlot{set, way}, evicted};
}

std::optional<EvictedLine> CacheArray::invalidate(LineAddr line_addr) {
  const auto slot = lookup(line_addr);
  if (!slot) return std::nullopt;
  CacheLine& l = line(*slot);
  EvictedLine out = snapshot(l);
  l = CacheLine{};
  repl_->on_invalidate(slot->set, slot->way);
  return out;
}

std::uint32_t CacheArray::valid_in_set(std::size_t set) const {
  std::uint32_t n = 0;
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    n += lines_[set * cfg_.ways + w].valid ? 1 : 0;
  }
  return n;
}

std::uint64_t CacheArray::valid_count() const {
  std::uint64_t n = 0;
  for (const CacheLine& l : lines_) n += l.valid ? 1 : 0;
  return n;
}

void CacheArray::clear() {
  for (CacheLine& l : lines_) l = CacheLine{};
}

EvictedLine CacheArray::snapshot(const CacheLine& l) {
  assert(l.valid);
  return EvictedLine{l.addr,     l.state,  l.dirty,      l.presence,
                     l.pp_tag,   l.pp_accessed, l.ever_written};
}

}  // namespace pipo
