// MESI coherence states for private-cache lines (Table II: the simulated
// machine runs the MESI protocol between the per-core L1/L2 caches through
// an inclusive, directory-tracking shared L3).
#pragma once

#include <cstdint>

namespace pipo {

enum class Mesi : std::uint8_t {
  kInvalid = 0,
  kShared,
  kExclusive,
  kModified,
};

constexpr const char* to_string(Mesi s) {
  switch (s) {
    case Mesi::kInvalid: return "I";
    case Mesi::kShared: return "S";
    case Mesi::kExclusive: return "E";
    case Mesi::kModified: return "M";
  }
  return "?";
}

/// True when the state grants write permission without a bus transaction.
constexpr bool can_write(Mesi s) {
  return s == Mesi::kModified || s == Mesi::kExclusive;
}

/// True when the line holds data the memory does not (writeback needed).
constexpr bool is_dirty(Mesi s) { return s == Mesi::kModified; }

}  // namespace pipo
