// Passive set-associative tag array with per-line coherence and
// PiPoMonitor metadata. The active protocol logic (hierarchy walks,
// inclusive back-invalidation, directory updates, pEvict notifications)
// lives in sim/system.*; this class only manages placement, lookup and
// victim selection within one array.
//
// One CacheArray models a private L1/L2 or a single LLC slice. Set
// indexing is `(line >> index_shift) & (sets-1)`, so an LLC slice passes
// index_shift = log2(num_slices) to skip the slice-selection bits. Lines
// store their full line address (the model's equivalent of the tag field;
// hardware would store only the bits above the index).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cache/cache_config.h"
#include "cache/mesi.h"
#include "cache/replacement.h"
#include "common/bitutil.h"
#include "common/types.h"

namespace pipo {

/// Metadata of one cached line.
struct CacheLine {
  bool valid = false;
  LineAddr addr = 0;            ///< full line address (models the tag)
  Mesi state = Mesi::kInvalid;  ///< private caches: MESI state of this copy
  bool dirty = false;           ///< LLC: line newer than memory
  std::uint32_t presence = 0;   ///< LLC: bitmask of cores holding the line
  // --- PiPoMonitor per-line tag bits (only used at the LLC) ---
  bool pp_tag = false;       ///< captured as a Ping-Pong line (Section IV)
  bool pp_accessed = false;  ///< demanded since the tag/prefetch was set
  /// LLC: the line has ever been written while resident. RIC's relaxed
  /// inclusion exempts never-written (read-only-in-practice) lines from
  /// back-invalidation.
  bool ever_written = false;
};

/// Identifies a resident line.
struct CacheSlot {
  std::size_t set = 0;
  std::uint32_t way = 0;
};

/// Pluggable victim-selection override (e.g. SHARP's hierarchy-aware
/// policy). `choose` sees one set's lines and returns the way to victimize
/// (an invalid way means a free fill), or nullopt to defer to the array's
/// configured replacement policy.
class VictimChooser {
 public:
  virtual ~VictimChooser() = default;
  virtual std::optional<std::uint32_t> choose(const CacheLine* set,
                                              std::uint32_t ways) = 0;
};

/// Snapshot of a line leaving the array (eviction or invalidation).
struct EvictedLine {
  LineAddr line = 0;
  Mesi state = Mesi::kInvalid;
  bool dirty = false;
  std::uint32_t presence = 0;
  bool pp_tag = false;
  bool pp_accessed = false;
  bool ever_written = false;
};

class CacheArray {
 public:
  explicit CacheArray(const CacheConfig& cfg, unsigned index_shift = 0,
                      std::uint64_t seed = 1);

  const CacheConfig& config() const { return cfg_; }
  std::size_t num_sets() const { return sets_; }
  std::uint32_t ways() const { return cfg_.ways; }
  unsigned index_shift() const { return index_shift_; }

  std::size_t set_of(LineAddr line) const {
    return static_cast<std::size_t>((line >> index_shift_) & set_mask_);
  }

  /// Finds the line without updating replacement state.
  std::optional<CacheSlot> lookup(LineAddr line) const;

  /// Replacement-policy update on a hit.
  void touch(const CacheSlot& slot) { repl_->on_access(slot.set, slot.way); }

  CacheLine& line(const CacheSlot& slot) {
    return lines_[slot.set * cfg_.ways + slot.way];
  }
  const CacheLine& line(const CacheSlot& slot) const {
    return lines_[slot.set * cfg_.ways + slot.way];
  }

  /// Result of inserting a line: where it landed and what fell out.
  struct FillResult {
    CacheSlot slot;
    std::optional<EvictedLine> evicted;
  };

  /// Inserts `line_addr`, preferring a free way, otherwise evicting the
  /// policy's victim. A non-null `chooser` overrides victim selection
  /// (SHARP). The caller initializes the returned line's state.
  /// Precondition: the line is not already resident (double-fill is a
  /// protocol bug and asserts in debug builds).
  FillResult fill(LineAddr line_addr, VictimChooser* chooser = nullptr);

  /// Removes the line if present, returning its final metadata.
  std::optional<EvictedLine> invalidate(LineAddr line_addr);

  /// Number of valid lines in `set` (attack-analysis helper).
  std::uint32_t valid_in_set(std::size_t set) const;

  /// Total valid lines. O(1): maintained incrementally by fill /
  /// invalidate / clear.
  std::uint64_t valid_count() const { return valid_count_; }

  /// Audits the packed tag/occupancy mirror against the CacheLine
  /// records (the mirror is only maintained by fill / invalidate /
  /// clear — a writer mutating `valid`/`addr` through line() would
  /// desynchronize it). Returns a description of the first mismatch, or
  /// an empty string. Wired into System::check_invariants().
  std::string check_mirror() const;

  void clear();

 private:
  static EvictedLine snapshot(const CacheLine& l);

  CacheConfig cfg_;
  unsigned index_shift_;
  std::size_t sets_;
  std::uint64_t set_mask_;
  std::vector<CacheLine> lines_;
  // Structure-of-arrays mirror of the placement state. lookup() and the
  // free-way scan in fill() touch only these packed vectors — one
  // 64-bit occupancy word per set plus a contiguous tag row — instead of
  // striding through the full CacheLine records. The CacheLine valid /
  // addr fields stay authoritative for readers (VictimChooser, line());
  // only fill / invalidate / clear mutate them, and they keep the mirror
  // in sync.
  std::vector<LineAddr> tags_;       ///< per-(set,way) line address
  std::vector<std::uint64_t> occ_;   ///< per-set valid bitmask (ways <= 64)
  std::uint64_t valid_count_ = 0;
  std::unique_ptr<ReplacementPolicy> repl_;
};

}  // namespace pipo
