#include "pipo/pipo_monitor.h"

namespace pipo {

PiPoMonitor::AccessResult PiPoMonitor::on_access(LineAddr line) {
  if (!cfg_.enabled) return AccessResult{};
  ++accesses_;
  const AutoCuckooFilter::Response resp = filter_.access(line);
  if (resp.ping_pong) ++captures_;
  return AccessResult{resp.security, resp.ping_pong};
}

PiPoMonitor::AccessResult PiPoMonitor::on_access(
    LineAddr line, const AccessRouteHints& hints) {
  if (!hints.has_filter_triple) return on_access(line);
  if (!cfg_.enabled) return AccessResult{};
  ++accesses_;
  const BucketArray::Candidates pre{
      hints.fprint, static_cast<std::size_t>(hints.bucket1),
      static_cast<std::size_t>(hints.bucket2)};
  const AutoCuckooFilter::Response resp = filter_.access(line, pre);
  if (resp.ping_pong) ++captures_;
  return AccessResult{resp.security, resp.ping_pong};
}

void PiPoMonitor::on_prefetch_fetch(LineAddr line) {
  if (!cfg_.enabled || !cfg_.record_prefetch_accesses) return;
  filter_.access(line);
}

bool PiPoMonitor::on_pevict(Tick now, LineAddr line, bool accessed,
                            bool demand_caused) {
  if (!cfg_.enabled) return false;
  ++pevicts_;
  bool rearm;
  if (cfg_.gate == PrefetchGate::kAccessedOnly) {
    rearm = accessed;
  } else {
    // kCapturedInFilter: only demand-caused evictions re-arm (a prefetch
    // fill evicting a sibling must not chain into a prefetch storm), and
    // an un-reaccessed line additionally needs its filter record to still
    // report Ping-Pong (read-only Query). The record ages out via
    // autonomic deletion, which bounds how long a quiet line keeps being
    // restored.
    rearm = demand_caused;
    if (rearm && !accessed) {
      const auto sec = filter_.security_of(line);
      rearm = sec && *sec >= cfg_.filter.sec_thr;
    }
  }
  if (!rearm) {
    ++pevicts_dropped_;
    return false;
  }
  pending_.push_back(Pending{now + cfg_.prefetch_delay, line});
  return true;
}

std::vector<PiPoMonitor::PrefetchRequest> PiPoMonitor::take_due_prefetches(
    Tick now) {
  std::vector<PrefetchRequest> due;
  while (!pending_.empty() && pending_.front().ready <= now) {
    due.push_back(PrefetchRequest{pending_.front().ready,
                                  pending_.front().line, /*tag=*/true});
    pending_.pop_front();
    ++prefetches_issued_;
  }
  return due;
}

}  // namespace pipo
