// PiPoMonitor — the paper's detection-and-mitigation engine (Section IV).
//
// The monitor sits inside the memory controller and sees exactly two
// message types:
//
//   Access  — every demand line fetch the LLC sends to memory. The monitor
//             Queries its Auto-Cuckoo filter in parallel with the DRAM
//             fetch (off the critical path); the Response is the line's
//             Security counter. Response >= secThr captures the line as a
//             Ping-Pong line, and the LLC tags it when the fill returns.
//
//   pEvict  — sent by the LLC when a tagged-and-accessed line is evicted.
//             The monitor waits `prefetch_delay` cycles (letting the
//             victim's writeback drain so the prefetch does not preempt
//             memory bandwidth) and then pushes a prefetch request into
//             the MC fetch queue, restoring the line to the LLC and
//             obfuscating the adversary's probe.
//
// The monitor never initiates traffic of its own accord and holds no
// per-line state outside the filter — all Ping-Pong bookkeeping beyond
// the Security counters lives in the LLC's per-line tag bits.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.h"
#include "filter/auto_cuckoo_filter.h"
#include "filter/filter_config.h"
#include "filter/observer.h"
#include "pipo/monitor_iface.h"

namespace pipo {

/// When does the eviction of a Ping-Pong-tagged line re-arm a prefetch?
/// The paper's anti-over-protection rule says a line that has undergone
/// Prefetch is re-prefetched "only when the tagged-accessed line is
/// evicted". The two policies differ in how an evicted, *un*-accessed
/// prefetched line is treated:
enum class PrefetchGate : std::uint8_t {
  /// Re-prefetch when the eviction was caused by a *demand* fill and the
  /// line is either accessed-since-tag or still remembered as Ping-Pong
  /// by the filter (read-only Query on pEvict; the pEvict message carries
  /// one extra bit for the eviction cause). Demand-caused means some
  /// agent is actively pressuring the set — exactly the attack situation —
  /// so a line under attack stays protected across quiet probe rounds
  /// (Fig 6(b): the attacker observes an access every iteration).
  /// Evictions caused by the monitor's own prefetch fills never re-arm,
  /// which kills self-feeding prefetch->evict->prefetch storms on benign
  /// conflict-thrashing sets, and autonomic deletion eventually rotates a
  /// quiet line's record out of the filter, ending its protection.
  kCapturedInFilter,
  /// Strict reading of the paper's rule: drop the line the first time it
  /// is evicted without having been demanded since the prefetch,
  /// regardless of what evicted it. Cheapest possible gate, but
  /// protection lapses during runs of secret bits that do not touch the
  /// line, which leaks those runs (see bench_gate_ablation).
  kAccessedOnly,
};

struct MonitorConfig {
  bool enabled = true;
  FilterConfig filter = FilterConfig::paper_default();
  /// Cycles between receiving a pEvict and issuing the prefetch
  /// ("the delay is to avoid memory bandwidth preemption with the
  /// writeback of the same line" — Section IV).
  std::uint32_t prefetch_delay = 32;
  /// Re-prefetch policy for evicted-but-not-reaccessed prefetched lines.
  PrefetchGate gate = PrefetchGate::kCapturedInFilter;
  /// Whether monitor-issued prefetch fetches are themselves recorded in
  /// the filter. Off by default: the paper's monitor observes "memory
  /// access requests from LLC", and counting self-generated traffic would
  /// only re-saturate already-captured lines.
  bool record_prefetch_accesses = false;

  static MonitorConfig paper_default() { return MonitorConfig{}; }
};

class PiPoMonitor final : public MonitorIface {
 public:
  explicit PiPoMonitor(const MonitorConfig& cfg,
                       FilterObserver* filter_observer = nullptr)
      : cfg_(cfg), filter_(cfg.filter, filter_observer) {}

  const MonitorConfig& config() const { return cfg_; }

  /// Result of observing one Access (the filter's Response; ping_pong
  /// means Response >= secThr and the fill should be tagged).
  using AccessResult = MonitorAccessResult;

  /// Observes a demand Access from the LLC for `line`. Runs the filter
  /// Query/insert and returns whether the line is captured as Ping-Pong.
  /// When the monitor is disabled this is a no-op returning no capture.
  AccessResult on_access(LineAddr line) override;

  /// Hinted observation: when `hints` carries the filter hash triple
  /// (precomputed by the line's shard worker), the filter skips its own
  /// hashing pass. Bit-identical to the unhinted path.
  AccessResult on_access(LineAddr line,
                         const AccessRouteHints& hints) override;

  /// Observes a monitor-generated prefetch fetch (only recorded when
  /// `record_prefetch_accesses` is set).
  void on_prefetch_fetch(LineAddr line) override;

  /// pEvict message from the LLC: a Ping-Pong-tagged line was evicted at
  /// `now`; `accessed` is the line's accessed-since-tag/prefetch bit and
  /// `demand_caused` tells whether a demand fill (rather than one of the
  /// monitor's own prefetch fills) evicted it. Depending on the gate
  /// policy this schedules a prefetch for now + prefetch_delay, or drops
  /// the event (returns false).
  bool on_pevict(Tick now, LineAddr line, bool accessed,
                 bool demand_caused) override;

  using PrefetchRequest = MonitorPrefetchRequest;

  /// Pops every scheduled prefetch whose issue time is <= now. The system
  /// pushes these into the MC fetch queue and fills the LLC (tagged,
  /// accessed = false).
  std::vector<PrefetchRequest> take_due_prefetches(Tick now) override;

  /// Earliest pending-prefetch issue time, or 0 when none are pending
  /// (lets the simulation driver schedule a wakeup).
  bool has_pending_prefetch() const { return !pending_.empty(); }
  Tick next_prefetch_tick() const {
    return pending_.empty() ? 0 : pending_.front().ready;
  }

  AutoCuckooFilter& filter() { return filter_; }
  const AutoCuckooFilter& filter() const { return filter_; }

  // --- statistics ---
  std::uint64_t accesses() const { return accesses_; }
  std::uint64_t captures() const override { return captures_; }
  std::uint64_t pevicts() const { return pevicts_; }
  std::uint64_t pevicts_dropped() const { return pevicts_dropped_; }
  std::uint64_t prefetches_issued() const override {
    return prefetches_issued_;
  }

 private:
  struct Pending {
    Tick ready;
    LineAddr line;
  };

  MonitorConfig cfg_;
  AutoCuckooFilter filter_;
  std::deque<Pending> pending_;  // FIFO: constant delay keeps it sorted

  std::uint64_t accesses_ = 0;
  std::uint64_t captures_ = 0;
  std::uint64_t pevicts_ = 0;
  std::uint64_t pevicts_dropped_ = 0;
  std::uint64_t prefetches_issued_ = 0;
};

}  // namespace pipo
