// Common interface of LLC-miss monitors that drive the tag/pEvict/
// prefetch machinery in the simulated memory controller: the PiPoMonitor
// (the paper's contribution), the directory-extension stateful baseline
// (CacheGuard-style, Related Work), and the BITP back-invalidation
// prefetcher. The System routes its three observation points (Access,
// pEvict, back-invalidation) through this interface and drains the
// monitor's prefetch queue into the LLC.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace pipo {

/// Result of one observed Access.
struct MonitorAccessResult {
  std::uint32_t security = 0;  ///< detector's counter value (Response)
  bool ping_pong = false;      ///< capture: tag the returning fill
};

/// Pure per-line routing work a shard worker may have precomputed off the
/// critical path (sim/shard_engine.h): the monitor-filter hash triple —
/// the paper's (xi_x, mu_x, sigma_x). Everything here is a pure function
/// of the line address and immutable configuration, so a hinted access is
/// bit-identical to an unhinted one; the serial-vs-sharded oracle in
/// tests/oracle/ enforces that. Plain integers only: this header is the
/// monitor contract and must not pull in the filter implementation.
struct AccessRouteHints {
  std::uint32_t fprint = 0;    ///< filter fingerprint xi_x
  std::uint64_t bucket1 = 0;   ///< candidate bucket mu_x
  std::uint64_t bucket2 = 0;   ///< candidate bucket sigma_x
  bool has_filter_triple = false;
};

/// A prefetch request ready to enter the MC fetch queue; `ready` is the
/// tick at which the monitor issued it, which the system uses to
/// backdate the fetch when draining lazily.
struct MonitorPrefetchRequest {
  Tick ready = 0;
  LineAddr line = 0;
  /// Whether the LLC fill should carry the Ping-Pong tag (detection-based
  /// monitors re-tag their restored lines; BITP's fills are plain).
  bool tag = true;
};

class MonitorIface {
 public:
  virtual ~MonitorIface() = default;

  /// A demand Access from the LLC to memory for `line`.
  virtual MonitorAccessResult on_access(LineAddr line) = 0;

  /// Hinted variant: `hints` may carry the precomputed filter hash triple
  /// from a shard worker. Monitors without hashed state (and monitors
  /// that simply have not been taught hints) fall back to the plain
  /// observation — results are identical either way by construction.
  virtual MonitorAccessResult on_access(LineAddr line,
                                        const AccessRouteHints& hints) {
    (void)hints;
    return on_access(line);
  }

  /// A monitor-generated prefetch fetch reaching memory.
  virtual void on_prefetch_fetch(LineAddr line) { (void)line; }

  /// pEvict from the LLC: a tagged line was evicted. Returns whether a
  /// prefetch was scheduled.
  virtual bool on_pevict(Tick now, LineAddr line, bool accessed,
                         bool demand_caused) = 0;

  /// A private copy was back-invalidated by an LLC eviction (only BITP
  /// reacts to this).
  virtual void on_back_invalidation(Tick now, LineAddr line) {
    (void)now;
    (void)line;
  }

  /// Pops every scheduled prefetch whose issue time is <= now.
  virtual std::vector<MonitorPrefetchRequest> take_due_prefetches(
      Tick now) = 0;

  // --- statistics common to all monitors ---
  virtual std::uint64_t captures() const = 0;
  virtual std::uint64_t prefetches_issued() const = 0;
};

/// Monitor of the undefended baseline: observes nothing, issues nothing.
class NullMonitor final : public MonitorIface {
 public:
  using MonitorIface::on_access;
  MonitorAccessResult on_access(LineAddr) override { return {}; }
  bool on_pevict(Tick, LineAddr, bool, bool) override { return false; }
  std::vector<MonitorPrefetchRequest> take_due_prefetches(Tick) override {
    return {};
  }
  std::uint64_t captures() const override { return 0; }
  std::uint64_t prefetches_issued() const override { return 0; }
};

}  // namespace pipo
