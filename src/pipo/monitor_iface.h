// Common interface of LLC-miss monitors that drive the tag/pEvict/
// prefetch machinery in the simulated memory controller: the PiPoMonitor
// (the paper's contribution), the directory-extension stateful baseline
// (CacheGuard-style, Related Work), and the BITP back-invalidation
// prefetcher. The System routes its three observation points (Access,
// pEvict, back-invalidation) through this interface and drains the
// monitor's prefetch queue into the LLC.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace pipo {

/// Result of one observed Access.
struct MonitorAccessResult {
  std::uint32_t security = 0;  ///< detector's counter value (Response)
  bool ping_pong = false;      ///< capture: tag the returning fill
};

/// A prefetch request ready to enter the MC fetch queue; `ready` is the
/// tick at which the monitor issued it, which the system uses to
/// backdate the fetch when draining lazily.
struct MonitorPrefetchRequest {
  Tick ready = 0;
  LineAddr line = 0;
  /// Whether the LLC fill should carry the Ping-Pong tag (detection-based
  /// monitors re-tag their restored lines; BITP's fills are plain).
  bool tag = true;
};

class MonitorIface {
 public:
  virtual ~MonitorIface() = default;

  /// A demand Access from the LLC to memory for `line`.
  virtual MonitorAccessResult on_access(LineAddr line) = 0;

  /// A monitor-generated prefetch fetch reaching memory.
  virtual void on_prefetch_fetch(LineAddr line) { (void)line; }

  /// pEvict from the LLC: a tagged line was evicted. Returns whether a
  /// prefetch was scheduled.
  virtual bool on_pevict(Tick now, LineAddr line, bool accessed,
                         bool demand_caused) = 0;

  /// A private copy was back-invalidated by an LLC eviction (only BITP
  /// reacts to this).
  virtual void on_back_invalidation(Tick now, LineAddr line) {
    (void)now;
    (void)line;
  }

  /// Pops every scheduled prefetch whose issue time is <= now.
  virtual std::vector<MonitorPrefetchRequest> take_due_prefetches(
      Tick now) = 0;

  // --- statistics common to all monitors ---
  virtual std::uint64_t captures() const = 0;
  virtual std::uint64_t prefetches_issued() const = 0;
};

/// Monitor of the undefended baseline: observes nothing, issues nothing.
class NullMonitor final : public MonitorIface {
 public:
  MonitorAccessResult on_access(LineAddr) override { return {}; }
  bool on_pevict(Tick, LineAddr, bool, bool) override { return false; }
  std::vector<MonitorPrefetchRequest> take_due_prefetches(Tick) override {
    return {};
  }
  std::uint64_t captures() const override { return 0; }
  std::uint64_t prefetches_issued() const override { return 0; }
};

}  // namespace pipo
