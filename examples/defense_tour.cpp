// Tour of the defense zoo: run the same cross-core Prime+Probe attack
// against every defense the library implements and print what the
// attacker learns under each.
//
//   ./example_defense_tour [iterations]
//
// This is the five-minute version of bench_defense_comparison: one
// attack, six machines, side-by-side observation traces.
#include <cstdio>
#include <cstdlib>

#include "common/parse_num.h"
#include <vector>

#include "attack/attack_experiment.h"
#include "attack/victim.h"

int main(int argc, char** argv) try {
  using namespace pipo;

  const std::uint32_t iters =
      argc > 1 ? parse_uint32(argv[1], "iterations", 1, 1'000'000) : 60;
  const auto key = make_test_key(iters, 0xC0FFEE);

  std::printf("One Prime+Probe attack, six machines (%u iterations).\n",
              iters);
  std::printf("Rows show whether the attacker inferred a victim access to "
              "the multiply routine in each iteration.\n\n");

  std::printf("key bits       ");
  for (bool b : key) std::printf("%c", b ? '1' : '0');
  std::printf("\n");

  for (DefenseKind kind :
       {DefenseKind::kNone, DefenseKind::kPiPoMonitor,
        DefenseKind::kDirectoryMonitor, DefenseKind::kSharp,
        DefenseKind::kBitp, DefenseKind::kRic}) {
    PrimeProbeExperimentConfig cfg;
    cfg.system = SystemConfig::with_defense(kind);
    cfg.iterations = iters;
    cfg.key = key;
    const auto r = run_prime_probe_experiment(cfg);
    std::printf("%-15.15s", to_string(kind));
    for (bool o : r.observed[1]) std::printf("%c", o ? '*' : '.');
    std::printf("  acc=%.0f%%\n", 100.0 * r.key_accuracy);
  }

  std::printf(
      "\nReading the rows: the baseline's row mirrors the key (the leak); "
      "PiPoMonitor and the directory monitor saturate the row with "
      "prefetch-induced observations (the attacker always 'sees' an "
      "access); SHARP denies the attacker its evictions; RIC silences "
      "the channel for this read-only victim; BITP blurs but does not "
      "erase it. Accuracy at ~the key's 1-bit fraction means the "
      "attacker has nothing.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "defense_tour: %s\n", e.what());
  return 2;
}
