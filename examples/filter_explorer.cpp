// filter_explorer: standalone exploration of the Auto-Cuckoo filter —
// occupancy growth, collision behaviour, autonomic deletion, and the
// adversarial eviction costs — without the cache simulator.
//
// Usage: ./build/examples/filter_explorer [l] [b] [f] [mnk]
#include <cstdio>
#include <cstdlib>

#include "common/parse_num.h"

#include "attack/filter_attack.h"
#include "common/rng.h"
#include "filter/audit.h"
#include "filter/auto_cuckoo_filter.h"

int main(int argc, char** argv) try {
  using namespace pipo;

  FilterConfig cfg;
  if (argc > 1) cfg.l = parse_uint32(argv[1], "l", 1);
  if (argc > 2) cfg.b = parse_uint32(argv[2], "b", 1);
  if (argc > 3) cfg.f = parse_uint32(argv[3], "f", 1);
  if (argc > 4) cfg.mnk = parse_uint32(argv[4], "mnk", 1);
  cfg.validate();

  std::printf("Auto-Cuckoo filter: l=%u b=%u f=%u MNK=%u secThr=%u\n",
              cfg.l, cfg.b, cfg.f, cfg.mnk, cfg.sec_thr);
  std::printf("  capacity %llu entries, %.1f KB, eps=%.5f\n\n",
              static_cast<unsigned long long>(cfg.entries()),
              cfg.storage_kib(), cfg.false_positive_rate());

  // --- occupancy growth under random insertions ---
  FilterAudit audit(cfg);
  AutoCuckooFilter filter(cfg, &audit);
  Rng rng(2024);
  std::printf("%-12s %-10s %-10s %-12s\n", "insertions", "occupancy",
              "kicks", "auto-drops");
  const std::uint64_t total = cfg.entries() * 4;
  for (std::uint64_t i = 1; i <= total; ++i) {
    filter.access(rng.below(1ull << 40));
    if (i % (total / 8) == 0) {
      std::printf("%-12llu %8.1f%% %10llu %12llu\n",
                  static_cast<unsigned long long>(i),
                  filter.occupancy() * 100.0,
                  static_cast<unsigned long long>(filter.total_kicks()),
                  static_cast<unsigned long long>(
                      filter.autonomic_deletions()));
    }
  }

  // --- collision ground truth ---
  std::printf("\nfingerprint collisions (ground truth):\n");
  std::printf("  entries with >=2 merged addresses: %.3f%%\n",
              audit.collision_entry_ratio() * 100.0);
  for (const auto& [k, n] : audit.collision_histogram()) {
    if (k >= 2) {
      std::printf("    %zu addresses merged: %llu entries\n", k,
                  static_cast<unsigned long long>(n));
    }
  }

  // --- adversarial eviction cost (Section VI-B, scaled trials) ---
  std::printf("\nadversarial eviction of one record:\n");
  const auto brute = brute_force_attack(cfg, 10, 99, cfg.entries() * 64);
  std::printf("  brute force: mean %.0f fills (theory b*l = %.0f)\n",
              brute.mean_fills, brute.theory);
  const auto targeted = targeted_attack(cfg, 10, 99, cfg.entries() * 64);
  std::printf("  targeted   : mean %.0f fills%s (eviction-set theory "
              "b^(MNK+1) = %.0f)\n",
              targeted.mean_fills, targeted.censored ? " [censored]" : "",
              targeted.theory);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "filter_explorer: %s\n", e.what());
  return 2;
}
