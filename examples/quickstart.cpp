// Quickstart: the smallest complete use of the library.
//
//  1. Build the paper's Table II machine (4 cores, MESI, inclusive
//     3-level hierarchy, PiPoMonitor in the memory controller).
//  2. Drive it with a synthetic workload per core.
//  3. Read back the hierarchy and monitor statistics.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "analysis/overhead_model.h"
#include "sim/simulation.h"
#include "workload/profile.h"
#include "workload/synthetic.h"

int main() {
  using namespace pipo;

  // --- 1. configure the machine (Table II defaults) ---
  SystemConfig cfg = SystemConfig::paper_default();
  std::printf("PiPoMonitor quickstart\n");
  std::printf("  machine: %u cores, L3 %.1f MB / %u-way / %u slices\n",
              cfg.num_cores, cfg.l3.size_bytes / 1048576.0, cfg.l3.ways,
              cfg.l3_slices);
  std::printf("  filter : l=%u b=%u f=%u secThr=%u MNK=%u (eps=%.4f)\n\n",
              cfg.monitor.filter.l, cfg.monitor.filter.b,
              cfg.monitor.filter.f, cfg.monitor.filter.sec_thr,
              cfg.monitor.filter.mnk,
              cfg.monitor.filter.false_positive_rate());

  // --- 2. one synthetic SPEC-like workload per core ---
  Simulation sim(cfg);
  const char* names[4] = {"libquantum", "mcf", "sphinx3", "gobmk"};
  constexpr std::uint64_t kInstructions = 200'000;
  for (CoreId c = 0; c < cfg.num_cores; ++c) {
    sim.set_workload(c, std::make_unique<SyntheticWorkload>(
                            spec_profile(names[c]),
                            SyntheticWorkload::disjoint_base(c),
                            kInstructions, /*seed=*/1000 + c));
  }
  const Tick finish = sim.run();

  // --- 3. results ---
  const System::Stats& s = sim.system().stats();
  std::printf("ran %llu instructions in %llu cycles\n",
              static_cast<unsigned long long>(sim.total_instructions()),
              static_cast<unsigned long long>(finish));
  std::printf("  L1 hits   %10llu\n  L2 hits   %10llu\n"
              "  L3 hits   %10llu\n  L3 misses %10llu\n",
              static_cast<unsigned long long>(s.l1_hits),
              static_cast<unsigned long long>(s.l2_hits),
              static_cast<unsigned long long>(s.l3_hits),
              static_cast<unsigned long long>(s.l3_misses));
  std::printf("  back-invalidations %llu, writebacks %llu\n",
              static_cast<unsigned long long>(s.back_invalidations),
              static_cast<unsigned long long>(s.writebacks));

  const PiPoMonitor& mon = sim.system().monitor();
  std::printf("\nPiPoMonitor:\n");
  std::printf("  filter occupancy   %5.1f%%\n",
              mon.filter().occupancy() * 100.0);
  std::printf("  Ping-Pong captures %llu\n",
              static_cast<unsigned long long>(mon.captures()));
  std::printf("  prefetches issued  %llu\n",
              static_cast<unsigned long long>(mon.prefetches_issued()));

  OverheadModel model(cfg.l3, 48, cfg.l3_slices);
  std::printf("\nhardware cost: %.1f KB (%.2f%% of LLC storage), "
              "%.4f mm^2 (%.2f%% of LLC area)\n",
              model.filter(cfg.monitor.filter).kib,
              model.storage_ratio(cfg.monitor.filter) * 100.0,
              model.filter(cfg.monitor.filter).area_mm2,
              model.area_ratio(cfg.monitor.filter) * 100.0);
  return 0;
}
