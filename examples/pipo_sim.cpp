// pipo_sim — command-line front end for the simulator: run a Table III
// mix, a recorded trace, or the Fig 6 attack experiment on a configurable
// machine and dump the full statistics. The "gem5 config script" of this
// reproduction.
//
// Usage:
//   pipo_sim mix <1..10> [--instr N] [--ws-div D] [--no-defense]
//            [--defense pipo|dir|sharp|bitp|ric] [--l L] [--b B]
//            [--secthr T] [--mnk K] [--seed S]
//            [--record DIR] [--record-format text|binary|framed]
//   pipo_sim trace <file|dir> [--core C] [--prefetch] [--from-frame K]
//            [--no-defense] [...]
//   pipo_sim attack [--iters N] [--interval T] [--no-defense] [...]
//
// `mix --record DIR` captures each core's consumed request stream to
// DIR/core<i>.trace; `trace` replays a single file on --core (default
// 0) or a whole captured directory of core<i>.trace files across all
// cores, streaming any trace format in O(chunk) memory
// (docs/traces.md); --prefetch decodes on a background thread. A
// replayed capture reproduces the live run's stats byte-identically.
//
// Examples:
//   pipo_sim mix 1 --instr 2000000 --ws-div 16
//   pipo_sim mix 1 --record rec --record-format binary
//   pipo_sim trace rec
//   pipo_sim attack --iters 100
//   pipo_sim trace probe.trace --defense dir
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <filesystem>

#include "analysis/perf_experiment.h"
#include "attack/attack_experiment.h"
#include "attack/victim.h"
#include "common/parse_num.h"
#include "sim/simulation.h"
#include "workload/mixes.h"
#include "workload/trace.h"        // IdleWorkload
#include "workload/trace_codec.h"  // TraceFormat
#include "workload/trace_frame.h"  // FramedTraceFile (--from-frame)

namespace {

using namespace pipo;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: pipo_sim mix <1..10> | trace <file|dir> | attack "
               "[options]\n"
               "options: --instr N --ws-div D --core C --iters N "
               "--interval T\n"
               "         --defense pipo|dir|sharp|bitp|ric --no-defense\n"
               "         --l L --b B --secthr T --mnk K --seed S\n"
               "         --record DIR --record-format text|binary|framed "
               "(mix only)\n"
               "         --prefetch (trace only: overlap decode with "
               "simulation)\n"
               "         --from-frame K (trace only: seek replay of a "
               "framed trace)\n");
  std::exit(2);
}

struct Options {
  std::uint64_t instr = 1'000'000;
  std::uint64_t ws_div = 16;
  CoreId core = 0;
  bool core_set = false;  ///< --core given explicitly
  std::uint32_t iters = 100;
  Tick interval = 5000;
  std::string record_dir;
  TraceFormat record_format = TraceFormat::kTextV1;
  bool prefetch = false;  ///< trace replay: decode on a background thread
  std::uint64_t from_frame = 0;  ///< framed trace: first frame to replay
  bool from_frame_set = false;
  SystemConfig system = SystemConfig::paper_default();
};

DefenseKind parse_defense(const std::string& name) {
  if (name == "pipo") return DefenseKind::kPiPoMonitor;
  if (name == "dir") return DefenseKind::kDirectoryMonitor;
  if (name == "sharp") return DefenseKind::kSharp;
  if (name == "bitp") return DefenseKind::kBitp;
  if (name == "ric") return DefenseKind::kRic;
  std::fprintf(stderr, "unknown defense '%s'\n", name.c_str());
  usage();
}

Options parse_options(int argc, char** argv, int first) {
  Options o;
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    const auto need = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        usage();
      }
      return argv[++i];
    };
    if (a == "--instr") {
      o.instr = parse_uint(need("--instr"), "--instr", 1);
    } else if (a == "--ws-div") {
      o.ws_div = parse_uint(need("--ws-div"), "--ws-div", 1);
    } else if (a == "--core") {
      o.core = static_cast<CoreId>(
          parse_uint32(need("--core"), "--core", 0, 1023));
      o.core_set = true;
    } else if (a == "--iters") {
      o.iters = parse_uint32(need("--iters"), "--iters", 1);
    } else if (a == "--interval") {
      o.interval = parse_uint(need("--interval"), "--interval", 1);
    } else if (a == "--no-defense") {
      o.system = SystemConfig::baseline();
    } else if (a == "--defense") {
      o.system = SystemConfig::with_defense(parse_defense(need("--defense")));
    } else if (a == "--l") {
      o.system.monitor.filter.l =
          parse_uint32(need("--l"), "--l", 1);
    } else if (a == "--b") {
      o.system.monitor.filter.b =
          parse_uint32(need("--b"), "--b", 1);
    } else if (a == "--secthr") {
      o.system.monitor.filter.sec_thr =
          parse_uint32(need("--secthr"), "--secthr", 1);
    } else if (a == "--mnk") {
      o.system.monitor.filter.mnk =
          parse_uint32(need("--mnk"), "--mnk", 1);
    } else if (a == "--seed") {
      o.system.seed = parse_uint(need("--seed"), "--seed");
    } else if (a == "--record") {
      o.record_dir = need("--record");
    } else if (a == "--record-format") {
      const auto fmt = parse_trace_format(need("--record-format"));
      if (!fmt) {
        std::fprintf(stderr, "--record-format must be text|binary|framed\n");
        usage();
      }
      o.record_format = *fmt;
    } else if (a == "--prefetch") {
      o.prefetch = true;
    } else if (a == "--from-frame") {
      o.from_frame = parse_uint(need("--from-frame"), "--from-frame");
      o.from_frame_set = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
      usage();
    }
  }
  return o;
}

void dump_system(const System& sys, std::uint64_t instructions) {
  std::ostringstream os;
  sys.stats().dump(os);
  std::printf("%s", os.str().c_str());
  std::printf("defense               %s\n", to_string(sys.config().defense));
  std::printf("instructions          %llu\n",
              static_cast<unsigned long long>(instructions));
  if (sys.config().defense == DefenseKind::kPiPoMonitor) {
    const auto& m = sys.monitor();
    std::printf("monitor accesses      %llu\n",
                static_cast<unsigned long long>(m.accesses()));
    std::printf("monitor captures      %llu\n",
                static_cast<unsigned long long>(m.captures()));
    std::printf("monitor prefetches    %llu\n",
                static_cast<unsigned long long>(m.prefetches_issued()));
    std::printf("filter occupancy      %.3f\n", m.filter().occupancy());
    std::printf("autonomic deletions   %llu\n",
                static_cast<unsigned long long>(
                    m.filter().autonomic_deletions()));
  }
}

int run_mix_cmd(int argc, char** argv) {
  if (argc < 3) usage();
  const unsigned mix = parse_uint32(argv[2], "mix", 1, num_mixes());
  const Options o = parse_options(argc, argv, 3);
  const TraceCapture capture{o.record_dir, o.record_format};
  const auto r = run_mix_perf(mix, o.system, o.instr, o.system.seed,
                              o.ws_div,
                              o.record_dir.empty() ? nullptr : &capture);
  std::printf("mix%u on %s, %llu instructions/core (working sets /%llu)\n\n",
              mix, to_string(o.system.defense),
              static_cast<unsigned long long>(o.instr),
              static_cast<unsigned long long>(o.ws_div));
  if (!o.record_dir.empty()) {
    std::printf("recorded %s traces to %s/core<i>.trace\n",
                to_string(o.record_format), o.record_dir.c_str());
  }
  std::printf("execution time        %llu cycles\n",
              static_cast<unsigned long long>(r.exec_time));
  std::printf("false positives / Mi  %.1f\n", r.false_positives_per_mi);
  std::ostringstream os;
  r.stats.dump(os);
  std::printf("%s", os.str().c_str());
  return 0;
}

int run_trace_cmd(int argc, char** argv) {
  if (argc < 3) usage();
  const std::string path = argv[2];
  const Options o = parse_options(argc, argv, 3);
  Simulation sim(o.system);
  if (std::filesystem::is_directory(path) && o.core_set) {
    // Scenario directories wire core<i>.trace to core i; honoring
    // --core silently would replay a different wiring than asked for.
    std::fprintf(stderr,
                 "--core applies to single-file traces only; a scenario "
                 "directory assigns core<i>.trace to core i\n");
    return 2;
  }
  std::uint32_t driven = 1;
  if (o.from_frame_set) {
    // Seek replay: open the framed container's seek index and start
    // mid-trace. Only meaningful for a single framed file.
    if (std::filesystem::is_directory(path)) {
      std::fprintf(stderr,
                   "--from-frame applies to a single framed trace file\n");
      return 2;
    }
    FramedTraceFile file(path);
    if (o.from_frame > file.frames().size()) {
      std::fprintf(stderr, "--from-frame %llu out of range (%zu frames)\n",
                   static_cast<unsigned long long>(o.from_frame),
                   file.frames().size());
      return 2;
    }
    sim.set_workload(o.core,
                     file.workload_from_frame(
                         static_cast<std::size_t>(o.from_frame),
                         StreamingTraceWorkload::kDefaultChunkRequests,
                         o.prefetch));
    for (CoreId c = 0; c < sim.num_cores(); ++c) {
      if (c != o.core) sim.set_workload(c, std::make_unique<IdleWorkload>());
    }
    std::printf("replaying %s from frame %llu/%zu on core %u (%s), "
                "streaming%s\n\n",
                path.c_str(), static_cast<unsigned long long>(o.from_frame),
                file.frames().size(), o.core, to_string(o.system.defense),
                o.prefetch ? " + prefetch" : "");
  } else {
    // Same loading rules (and out-of-range/garbage-name validation) as
    // run_trace_perf / sweep_runner; --core picks the single-file target.
    driven = assign_trace_scenario(sim, path, o.core, o.prefetch);
    std::printf("replaying %s on %u core(s) (%s), streaming%s\n\n",
                path.c_str(), driven, to_string(o.system.defense),
                o.prefetch ? " + prefetch" : "");
  }
  const Tick end = sim.run();
  std::printf("finished at tick      %llu\n",
              static_cast<unsigned long long>(end));
  dump_system(sim.system(), sim.total_instructions());
  return 0;
}

int run_attack_cmd(int argc, char** argv) {
  const Options o = parse_options(argc, argv, 2);
  PrimeProbeExperimentConfig cfg;
  cfg.system = o.system;
  cfg.iterations = o.iters;
  cfg.interval = o.interval;
  cfg.key = make_test_key(o.iters, cfg.seed);
  const auto r = run_prime_probe_experiment(cfg);
  std::printf("Prime+Probe on %s, %u iterations @ %llu cycles\n\n",
              to_string(o.system.defense), o.iters,
              static_cast<unsigned long long>(o.interval));
  std::printf("key bits  ");
  for (bool b : r.truth_multiply) std::printf("%c", b ? '1' : '0');
  std::printf("\nsquare    ");
  for (bool b : r.observed[0]) std::printf("%c", b ? '*' : '.');
  std::printf("\nmultiply  ");
  for (bool b : r.observed[1]) std::printf("%c", b ? '*' : '.');
  std::printf("\n\nkey-recovery accuracy %.1f%%\n", 100 * r.key_accuracy);
  std::printf("monitor captures      %llu\n",
              static_cast<unsigned long long>(r.monitor_captures));
  std::printf("monitor prefetches    %llu\n",
              static_cast<unsigned long long>(r.monitor_prefetches));
  std::ostringstream os;
  r.system_stats.dump(os);
  std::printf("%s", os.str().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  try {
    if (std::strcmp(argv[1], "mix") == 0) return run_mix_cmd(argc, argv);
    if (std::strcmp(argv[1], "trace") == 0) return run_trace_cmd(argc, argv);
    if (std::strcmp(argv[1], "attack") == 0) {
      return run_attack_cmd(argc, argv);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pipo_sim: %s\n", e.what());
    return 1;
  }
  usage();
}
