// workload_study: runs every Table III mix on baseline and PiPoMonitor
// machines, printing normalized performance and false-positive rates —
// a scaled-down interactive version of the Fig 8 benchmark.
//
// Usage: ./build/examples/workload_study [instructions_per_core]
#include <cstdio>
#include <cstdlib>

#include "common/parse_num.h"

#include "analysis/perf_experiment.h"
#include "workload/mixes.h"

int main(int argc, char** argv) try {
  using namespace pipo;
  const std::uint64_t budget =
      argc > 1 ? parse_uint(argv[1], "instructions_per_core", 1) : 300'000;

  std::printf("Table III mixes, %llu instructions/core "
              "(paper: 1B; see EXPERIMENTS.md for scaling)\n\n",
              static_cast<unsigned long long>(budget));
  std::printf("%-6s %-38s %12s %12s %10s %8s\n", "mix", "components",
              "base cycles", "pipo cycles", "norm perf", "FP/Minst");

  double norm_sum = 0.0;
  for (unsigned m = 1; m <= num_mixes(); ++m) {
    const auto base = run_mix_perf(m, SystemConfig::baseline(), budget, 42);
    const auto pipo = run_mix_perf(m, SystemConfig::paper_default(), budget, 42);
    const double norm = static_cast<double>(base.exec_time) /
                        static_cast<double>(pipo.exec_time);
    norm_sum += norm;

    std::string components;
    for (const auto& name : mix_components(m)) {
      components += (components.empty() ? "" : "-") + name;
    }
    std::printf("mix%-3u %-38s %12llu %12llu %10.4f %8.1f\n", m,
                components.c_str(),
                static_cast<unsigned long long>(base.exec_time),
                static_cast<unsigned long long>(pipo.exec_time), norm,
                pipo.false_positives_per_mi);
  }
  std::printf("\naverage normalized performance: %.4f "
              "(paper: ~1.001, i.e. +0.1%%)\n",
              norm_sum / num_mixes());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "workload_study: %s\n", e.what());
  return 2;
}
