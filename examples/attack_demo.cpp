// attack_demo: runs the Section VI-A Prime+Probe attack against a
// square-and-multiply victim twice — on the unprotected baseline and
// under PiPoMonitor — and renders the attacker's view (Fig 6 style).
//
// Usage: ./build/examples/attack_demo [iterations]
#include <cstdio>
#include <cstdlib>

#include "common/parse_num.h"
#include <string>

#include "attack/attack_experiment.h"
#include "attack/victim.h"

namespace {

void render(const char* title,
            const pipo::PrimeProbeExperimentResult& r) {
  std::printf("%s\n", title);
  const char* rows[2] = {"square  ", "multiply"};
  for (int t = 0; t < 2; ++t) {
    std::printf("  %s |", rows[t]);
    for (bool seen : r.observed[t]) std::printf("%c", seen ? '*' : '.');
    std::printf("|\n");
  }
  std::printf("  key     |");
  for (bool b : r.truth_multiply) std::printf("%c", b ? '1' : '0');
  std::printf("|\n");
  std::printf("  observed: square %.0f%%, multiply %.0f%% of rounds; "
              "key-recovery accuracy %.0f%%\n\n",
              r.observed_rate[0] * 100, r.observed_rate[1] * 100,
              r.key_accuracy * 100);
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace pipo;
  const std::uint32_t iterations =
      argc > 1 ? parse_uint32(argv[1], "iterations", 1, 1'000'000) : 100;

  PrimeProbeExperimentConfig cfg;
  cfg.iterations = iterations;
  cfg.interval = 5000;
  cfg.key = make_test_key(iterations, /*seed=*/0xC0FFEE);

  std::printf("Prime+Probe vs square-and-multiply (GnuPG-style), "
              "%u rounds, probe every %llu cycles\n",
              iterations, static_cast<unsigned long long>(cfg.interval));
  std::printf("'*' = attacker observed an eviction in the target's set\n\n");

  cfg.system = SystemConfig::baseline();
  render("(a) baseline — the key leaks through the multiply row:",
         run_prime_probe_experiment(cfg));

  cfg.system = SystemConfig::paper_default();
  const auto defended = run_prime_probe_experiment(cfg);
  render("(b) PiPoMonitor — the attacker always observes accesses:",
         defended);

  std::printf("monitor captured %llu Ping-Pong accesses and issued %llu "
              "obfuscating prefetches\n",
              static_cast<unsigned long long>(defended.monitor_captures),
              static_cast<unsigned long long>(defended.monitor_prefetches));
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "attack_demo: %s\n", e.what());
  return 2;
}
